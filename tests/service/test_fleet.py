"""Fleet front behaviour: cross-process bit-identity, routing, snapshot
reconciliation, crash recovery, and the aggregated stats/health surface.

The determinism tests here mirror ``test_lanes.py`` one level up: the
same workloads that prove lane-count independence prove worker-count
independence — fleet outputs must be bit-identical to a serial
``run_generation`` pass (and hence to a 1-worker service) for any fleet
width.  ``TestFleetChaos`` runs only under a ``fleet``-site fault plan
(the CI chaos job exports ``REPRO_FAULTS=fleet:kill@1``) because killed
workers legitimately fail their in-flight requests.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.library import PatternLibrary
from repro.drc import advanced_deck
from repro.engine import GenerationRequest, run_generation
from repro.geometry import Grid
from repro.library import load_library, save_library
from repro.service import (
    FleetConfig,
    FleetService,
    ServiceClient,
    ServiceConfig,
    SessionConfig,
    active_plan,
)
from repro.service.fleet import (
    WORKER_SUBDIR,
    default_workers,
    reconcile_worker_snapshots,
)

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


def _requests(deck, n, *, count=5, base_seed=0):
    return [
        GenerationRequest(backend="rule", count=count, seed=base_seed + i,
                          deck=deck)
        for i in range(n)
    ]


def _assert_batches_identical(a, b):
    assert a.attempts == b.attempts
    assert len(a.clips) == len(b.clips)
    for x, y in zip(a.clips, b.clips):
        np.testing.assert_array_equal(x, y)
    assert a.legal_count == b.legal_count
    assert a.admitted == b.admitted


def _fleet_client(workers, config=None):
    return ServiceClient(
        service=FleetService(
            FleetConfig(workers=workers, service=config or ServiceConfig())
        )
    )


def _has_fleet_faults():
    plan = active_plan()
    return plan is not None and any(s.site == "fleet" for s in plan)


#: Applied per-class (not module-wide, so TestFleetChaos still runs):
#: under a fleet kill schedule, requests legitimately fail, so the
#: determinism/observability assertions move to TestFleetChaos.
_skip_under_fleet_faults = pytest.mark.skipif(
    _has_fleet_faults(),
    reason="fleet kill schedule active: determinism tests move to "
           "TestFleetChaos",
)


@_skip_under_fleet_faults
class TestFleetDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_mixed_keys_bit_identical_to_serial(self, deck, workers):
        requests = [
            GenerationRequest(backend="rule", count=4, seed=s, deck=deck,
                              params={"variant": s % 3})
            for s in range(9)
        ]
        serial = [run_generation(request) for request in requests]
        with _fleet_client(workers) as client:
            batches = client.generate_many(requests)
        for expected, got in zip(serial, batches):
            _assert_batches_identical(expected, got)

    def test_jobs_and_lanes_inside_workers_stay_identical(self, deck):
        requests = _requests(deck, 6, base_seed=40)
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(jobs=2, lanes=2)
        with _fleet_client(2, config) as client:
            batches = client.generate_many(requests)
        for expected, got in zip(serial, batches):
            _assert_batches_identical(expected, got)

    def test_threaded_clients_bit_identical_to_serial(self, deck):
        requests = _requests(deck, 8, base_seed=70)
        serial = [run_generation(request) for request in requests]
        with _fleet_client(2) as client:
            results = [None] * len(requests)
            barrier = threading.Barrier(len(requests))

            def worker(index):
                barrier.wait()
                results[index] = client.generate(requests[index], timeout=120)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for expected, got in zip(serial, results):
            _assert_batches_identical(expected, got)

    def test_fleet_matches_one_worker_service(self, deck):
        requests = [
            GenerationRequest(backend="rule", count=4, seed=300 + s,
                              deck=deck, params={"variant": s % 2})
            for s in range(6)
        ]
        with ServiceClient(ServiceConfig()) as client:
            single = client.generate_many(requests)
        with _fleet_client(3) as client:
            fleet = client.generate_many(requests)
        for expected, got in zip(single, fleet):
            _assert_batches_identical(expected, got)


@_skip_under_fleet_faults
class TestFleetSessions:
    def test_session_store_matches_serial_growth(self, deck, tmp_path):
        requests = _requests(deck, 5, base_seed=10)
        config = ServiceConfig(
            sessions=SessionConfig(snapshot_root=tmp_path)
        )
        with _fleet_client(2, config) as client:
            for request in requests:
                client.generate(request, session="tenant-a", timeout=120)
        reference = PatternLibrary(name="reference")
        for request in requests:
            run_generation(request, library=reference)
        merged = load_library(tmp_path / "tenant-a", name="tenant-a")
        assert len(merged) == len(reference)
        for got, expected in zip(merged.clips, reference.clips):
            np.testing.assert_array_equal(got, expected)

    def test_sessions_pin_to_one_worker(self, deck, tmp_path):
        config = ServiceConfig(
            sessions=SessionConfig(snapshot_root=tmp_path)
        )
        with _fleet_client(2, config) as client:
            for request in _requests(deck, 4, base_seed=20):
                client.generate(request, session="pinned", timeout=120)
            depths = client.service.queue_depths()
            assert set(depths) == {"submit", "in_flight", "workers", "lanes"}
        # Exactly one worker directory holds the session's snapshot.
        worker_dirs = sorted((tmp_path / WORKER_SUBDIR).iterdir())
        holders = [d for d in worker_dirs if (d / "pinned").is_dir()]
        assert len(holders) == 1

    def test_two_tenants_reconcile_independently(self, deck, tmp_path):
        config = ServiceConfig(
            sessions=SessionConfig(snapshot_root=tmp_path)
        )
        a = _requests(deck, 3, base_seed=30)
        b = _requests(deck, 3, base_seed=60)
        with _fleet_client(2, config) as client:
            for request in a:
                client.generate(request, session="tenant-a", timeout=120)
            for request in b:
                client.generate(request, session="tenant-b", timeout=120)
        for session_id, requests in (("tenant-a", a), ("tenant-b", b)):
            reference = PatternLibrary(name="reference")
            for request in requests:
                run_generation(request, library=reference)
            merged = load_library(tmp_path / session_id, name=session_id)
            assert len(merged) == len(reference)


class TestReconcileWorkerSnapshots:
    """Pure on-disk merge logic — fault plans are irrelevant here."""

    def _store_from(self, deck, seeds, name):
        store = PatternLibrary(name=name)
        for seed in seeds:
            run_generation(
                GenerationRequest(backend="rule", count=4, seed=seed,
                                  deck=deck),
                library=store,
            )
        return store

    def test_merge_order_is_base_then_worker_index(self, deck, tmp_path):
        base = self._store_from(deck, [1], "s")
        w0 = self._store_from(deck, [2], "s")
        w1 = self._store_from(deck, [3], "s")
        save_library(base, tmp_path / "s")
        save_library(w0, tmp_path / WORKER_SUBDIR / "0000" / "s")
        save_library(w1, tmp_path / WORKER_SUBDIR / "0001" / "s")
        merged = reconcile_worker_snapshots(tmp_path)
        assert set(merged) == {"s"}
        store = load_library(tmp_path / "s", name="s")
        # Ordered delta merge: the shared root defines the base order,
        # then each worker's unseen patterns append in worker-index
        # order — same sequence as merging by hand.
        from repro.library import store_delta

        by_hand = base
        by_hand.merge(store_delta(w0))
        by_hand.merge(store_delta(w1))
        assert len(store) == len(by_hand)
        for got, want in zip(store.clips, by_hand.clips):
            np.testing.assert_array_equal(got, want)

    def test_single_worker_session_round_trips(self, deck, tmp_path):
        only = self._store_from(deck, [4, 5], "solo")
        save_library(only, tmp_path / WORKER_SUBDIR / "0000" / "solo")
        merged = reconcile_worker_snapshots(tmp_path)
        assert merged == {"solo": len(only)}
        store = load_library(tmp_path / "solo", name="solo")
        for got, want in zip(store.clips, only.clips):
            np.testing.assert_array_equal(got, want)

    def test_no_worker_dir_is_a_noop(self, tmp_path):
        assert reconcile_worker_snapshots(tmp_path) == {}

    def test_reconcile_is_idempotent(self, deck, tmp_path):
        solo = self._store_from(deck, [6], "t")
        save_library(solo, tmp_path / WORKER_SUBDIR / "0000" / "t")
        first = reconcile_worker_snapshots(tmp_path)
        second = reconcile_worker_snapshots(tmp_path)
        assert first == second


@_skip_under_fleet_faults
class TestFleetObservability:
    def test_stats_payload_aggregates_workers(self, deck):
        requests = _requests(deck, 6, base_seed=80)
        with _fleet_client(2) as client:
            client.generate_many(requests)
            payload = client.service.stats_payload()
        assert payload["submitted"] == len(requests)
        assert payload["completed"] == len(requests)
        assert payload["failed"] == 0
        fleet = payload["fleet"]
        assert fleet["worker_count"] == 2
        assert fleet["workers_alive"] == 2
        assert len(fleet["workers"]) == 2
        routed = sum(entry["routed"] for entry in fleet["workers"])
        assert routed == len(requests)
        # Worker-side counters summed through the wire-format histogram
        # merge: every request passed the queue stage somewhere.
        assert payload["stages"]["queue"]["count"] == len(requests)
        assert payload["micro_batches"] >= 1
        # Single-process payload shape parity (the TCP stats verb).
        for key in ("tuner", "warm_caches", "faults", "lanes",
                    "queue_depth", "pack_fill"):
            assert key in payload

    def test_health_aggregates_workers(self, deck):
        with _fleet_client(2) as client:
            client.generate(
                _requests(deck, 1, base_seed=90)[0], timeout=120
            )
            health = client.service.health()
        assert health["status"] == "ok"
        assert health["worker_count"] == 2
        assert health["workers_alive"] == 2
        assert len(health["workers"]) == 2
        for entry in health["workers"]:
            assert entry["alive"] is True
            assert entry["health"]["status"] == "ok"
        for key in ("retries", "deadline_drops", "cancelled",
                    "respawns", "crashed_requests"):
            assert key in health

    def test_queue_depths_includes_front_queue(self, deck):
        with _fleet_client(2) as client:
            depths = client.service.queue_depths()
        assert depths["submit"] == 0
        assert depths["in_flight"] == 0
        assert set(depths["workers"]) == {0, 1}

    def test_stopped_fleet_reports_stopped(self):
        client = _fleet_client(2)
        client.start()
        client.close()
        assert client.service.health()["status"] == "stopped"
        assert client.service.running is False


@_skip_under_fleet_faults
class TestFleetConfigResolution:
    def test_workers_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "5")
        assert default_workers() == 5
        assert FleetConfig().workers == 5

    def test_workers_env_unset_defaults_to_two(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_WORKERS", raising=False)
        assert default_workers() == 2

    def test_invalid_workers_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_SERVICE_WORKERS"):
            default_workers()

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0)

    def test_client_rejects_service_plus_workers(self):
        from repro.service import GenerationService

        with pytest.raises(ValueError, match="not both"):
            ServiceClient(service=GenerationService(None), workers=2)


@_skip_under_fleet_faults
class TestFleetCrashRecovery:
    """Deterministic crash-path tests via a programmatic fleet kill plan.

    These install their own ``fleet:kill`` schedule (scope="all"; the
    forked workers inherit it and restart its counters), and are
    skipped when an environment schedule is already active — the CI
    chaos job covers that combination through ``TestFleetChaos``.
    """

    @staticmethod
    def _await_respawn(service, *, timeout=30.0):
        """Respawn is asynchronous (it runs on the dead worker's reader
        thread); poll health until the slot is live again."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            health = service.health()
            if health["respawns"] >= 1 and health["workers_alive"] >= 1:
                return health
            time.sleep(0.05)
        return service.health()

    def test_worker_crash_fails_inflight_survivors_identical(self, deck):
        from repro.service import clear_faults, install_faults

        burst = _requests(deck, 6, base_seed=400)
        followups = _requests(deck, 3, base_seed=450)
        serial_burst = [run_generation(request) for request in burst]
        serial_followups = [run_generation(request) for request in followups]
        install_faults("fleet:kill@2", scope="all")
        try:
            with _fleet_client(1) as client:
                tickets = [client.submit(r) for r in burst]
                outcomes = []
                for ticket in tickets:
                    try:
                        outcomes.append(ticket.result(timeout=120))
                    except Exception as error:  # noqa: BLE001
                        outcomes.append(error)
                health = self._await_respawn(client.service)
                # The respawned worker (kill spec stripped) serves new
                # requests bit-identically to serial.
                after = client.generate_many(followups)
                payload = client.service.stats_payload()
        finally:
            clear_faults()
        errors = [o for o in outcomes if isinstance(o, Exception)]
        assert errors, "the killed worker should fail its in-flight request"
        assert any("died" in str(e) for e in errors)
        # Exactly-once resolution: every ticket resolved one way.
        assert len(outcomes) == len(burst)
        # Requests that resolved before the crash match serial exactly.
        for expected, got in zip(serial_burst, outcomes):
            if not isinstance(got, Exception):
                _assert_batches_identical(expected, got)
        for expected, got in zip(serial_followups, after):
            _assert_batches_identical(expected, got)
        assert health["respawns"] >= 1
        assert payload["fleet"]["crashed_requests"] >= 1
        assert payload["completed"] + payload["failed"] == (
            len(burst) + len(followups)
        )

    def test_respawned_worker_reloads_session_snapshot(self, deck, tmp_path):
        from repro.service import clear_faults, install_faults

        config = ServiceConfig(
            sessions=SessionConfig(snapshot_root=tmp_path,
                                   checkpoint_every=1)
        )
        requests = _requests(deck, 4, base_seed=500)
        install_faults("fleet:kill@3", scope="all")
        try:
            with _fleet_client(1, config) as client:
                grown = []
                for request in requests:
                    try:
                        batch = client.generate(
                            request, session="t", timeout=120
                        )
                        grown.append(len(batch.library))
                    except Exception:  # noqa: BLE001 - the killed one
                        grown.append(None)
        finally:
            clear_faults()
        assert None in grown
        # The post-crash batches saw the checkpointed store, not an
        # empty one: library size keeps growing across the respawn.
        sizes = [g for g in grown if g is not None]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_no_respawn_when_disabled(self, deck):
        from repro.service import clear_faults, install_faults

        install_faults("fleet:kill@1", scope="all")
        try:
            config = FleetConfig(
                workers=1, service=ServiceConfig(), respawn=False
            )
            with ServiceClient(service=FleetService(config)) as client:
                with pytest.raises(Exception, match="died|no live"):
                    client.generate(
                        _requests(deck, 1, base_seed=600)[0], timeout=120
                    )
                health = client.service.health()
                assert health["respawns"] == 0
                assert health["workers_alive"] == 0
                assert health["status"] == "degraded"
        finally:
            clear_faults()


@pytest.mark.skipif(
    not _has_fleet_faults(),
    reason="needs a fleet-site REPRO_FAULTS schedule (CI chaos job)",
)
class TestFleetChaos:
    """Run under ``REPRO_FAULTS=fleet:kill@1``: every worker's first
    submit kills it; the front must fail those requests terminally,
    respawn each slot once, and serve the survivors bit-identically."""

    def test_kill_schedule_resolves_every_request(self, deck):
        requests = _requests(deck, 8, base_seed=700)
        serial = [run_generation(request) for request in requests]
        with _fleet_client(2) as client:
            outcomes = []
            for request in requests:
                try:
                    outcomes.append(client.generate(request, timeout=120))
                except Exception as error:  # noqa: BLE001
                    outcomes.append(error)
            health = client.service.health()
        assert len(outcomes) == len(requests)
        survivors = [o for o in outcomes if not isinstance(o, Exception)]
        assert survivors, "respawned workers must serve later requests"
        for expected, got in zip(serial, outcomes):
            if not isinstance(got, Exception):
                _assert_batches_identical(expected, got)
        assert health["respawns"] >= 1
