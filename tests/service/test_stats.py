"""Edge cases of the latency histograms (:mod:`repro.service.stats`).

The serving benches exercise the happy path; these tests pin down the
corners: zero/negative durations, observations past the top bucket
boundary, and merge/percentile behaviour on empty histograms.
"""

import pytest

from repro.service.stats import STAGES, LatencyHistogram, StageLatencies
from repro.service.stats import _BOUNDS


class TestZeroDuration:
    def test_zero_lands_in_first_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.0)
        assert hist.count == 1
        assert hist.total_seconds == 0.0
        assert hist.max_seconds == 0.0
        snap = hist.snapshot()
        assert snap["buckets"] == [[round(_BOUNDS[0] * 1e3, 4), 1]]

    def test_negative_clamps_to_zero(self):
        hist = LatencyHistogram()
        hist.observe(-3.5)
        assert hist.count == 1
        assert hist.total_seconds == 0.0
        assert hist.max_seconds == 0.0

    def test_zero_percentiles_report_zero(self):
        hist = LatencyHistogram()
        for _ in range(10):
            hist.observe(0.0)
        # Upper-bound estimates are clamped to the observed max (0.0),
        # not the first bucket boundary.
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0


class TestOverflowBucket:
    def test_above_top_bound_lands_in_overflow(self):
        hist = LatencyHistogram()
        huge = _BOUNDS[-1] * 2.0  # ~420 s, past every finite bound
        hist.observe(huge)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == [[None, 1]]  # null upper bound
        assert snap["max_ms"] == round(huge * 1e3, 3)

    def test_overflow_percentile_is_exact_max(self):
        hist = LatencyHistogram()
        hist.observe(_BOUNDS[-1] * 3.0)
        hist.observe(_BOUNDS[-1] * 5.0)
        # The overflow bucket has no boundary; the estimate falls back
        # to the exact observed peak.
        assert hist.percentile(99) == _BOUNDS[-1] * 5.0

    def test_boundary_value_is_not_overflow(self):
        hist = LatencyHistogram()
        hist.observe(_BOUNDS[-1])  # inclusive upper bound of the last bucket
        assert hist.snapshot()["buckets"][0][0] is not None


class TestEmptyHistograms:
    def test_empty_percentile_is_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0

    def test_percentile_range_validated(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(100.5)

    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_ms"] == 0.0
        assert snap["buckets"] == []

    def test_merge_of_empty_changes_nothing(self):
        hist = LatencyHistogram()
        hist.observe(0.01)
        before = hist.snapshot()
        hist.merge(LatencyHistogram())
        assert hist.snapshot() == before

    def test_merge_into_empty_copies_everything(self):
        source = LatencyHistogram()
        source.observe(0.02)
        source.observe(_BOUNDS[-1] * 2.0)
        target = LatencyHistogram()
        target.merge(source)
        assert target.snapshot() == source.snapshot()
        # The source is left untouched.
        assert source.count == 2

    def test_self_merge_is_a_noop(self):
        hist = LatencyHistogram()
        hist.observe(0.5)
        hist.merge(hist)
        assert hist.count == 1
        assert hist.total_seconds == 0.5


class TestMergeAccounting:
    def test_counts_add_and_peak_takes_max(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        a.observe(0.004)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 3
        assert a.total_seconds == pytest.approx(2.005)
        assert a.max_seconds == 2.0

    def test_stage_latencies_merge_covers_every_stage(self):
        a, b = StageLatencies(), StageLatencies()
        for i, stage in enumerate(STAGES):
            b.observe(stage, 0.01 * (i + 1))
        a.merge(b)
        for i, stage in enumerate(STAGES):
            assert a[stage].count == 1
            assert a[stage].total_seconds == pytest.approx(0.01 * (i + 1))
        # b still holds its own observations.
        assert all(b[stage].count == 1 for stage in STAGES)
