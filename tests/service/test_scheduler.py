"""Micro-batch coalescing rules: grouping, ordering, splitting."""

import pytest

from repro.drc import advanced_deck, basic_deck
from repro.engine import GenerationRequest
from repro.geometry import Grid
from repro.service import MicroBatchScheduler, PendingRequest, SchedulerConfig

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


def _pending(arrival, *, backend="rule", deck=None, count=4, seed=0, priority=0):
    return PendingRequest(
        arrival=arrival,
        request=GenerationRequest(
            backend=backend, count=count, seed=seed, deck=deck,
            priority=priority,
        ),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_requests=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_attempts=0)
        with pytest.raises(ValueError):
            SchedulerConfig(gather_window_s=-1.0)


class TestCoalescing:
    def test_compatible_requests_share_one_batch(self):
        deck = advanced_deck(GRID)
        pending = [_pending(i, deck=deck, seed=i) for i in range(5)]
        batches = MicroBatchScheduler().coalesce(pending)
        assert len(batches) == 1
        assert len(batches[0]) == 5
        assert [e.arrival for e in batches[0].entries] == [0, 1, 2, 3, 4]

    def test_incompatible_backends_split(self):
        deck = advanced_deck(GRID)
        pending = [
            _pending(0, backend="rule", deck=deck),
            _pending(1, backend="solver", deck=deck),
            _pending(2, backend="rule", deck=deck),
        ]
        batches = MicroBatchScheduler().coalesce(pending)
        assert len(batches) == 2
        by_backend = {b.entries[0].request.backend: b for b in batches}
        assert [e.arrival for e in by_backend["rule"].entries] == [0, 2]
        assert [e.arrival for e in by_backend["solver"].entries] == [1]

    def test_different_decks_split(self):
        pending = [
            _pending(0, deck=advanced_deck(GRID)),
            _pending(1, deck=basic_deck(GRID)),
        ]
        assert len(MicroBatchScheduler().coalesce(pending)) == 2

    def test_equal_decks_coalesce_across_instances(self):
        # Two independently built but identical decks are compatible.
        pending = [
            _pending(0, deck=advanced_deck(GRID)),
            _pending(1, deck=advanced_deck(GRID)),
        ]
        assert len(MicroBatchScheduler().coalesce(pending)) == 1

    def test_same_name_different_rules_never_coalesce(self):
        # Rule content participates in the key: a customized deck must not
        # share the other deck's DRC sweep just because the names match.
        from dataclasses import replace

        stock = advanced_deck(GRID)
        relaxed = replace(stock, rules=stock.rules[:-1])
        assert stock.name == relaxed.name
        pending = [_pending(0, deck=stock), _pending(1, deck=relaxed)]
        assert len(MicroBatchScheduler().coalesce(pending)) == 2

    def test_arrival_order_preserved_regardless_of_input_order(self):
        deck = advanced_deck(GRID)
        pending = [_pending(i, deck=deck) for i in (3, 0, 2, 1)]
        batches = MicroBatchScheduler().coalesce(pending)
        assert [e.arrival for e in batches[0].entries] == [0, 1, 2, 3]


class TestSplitting:
    def test_max_batch_requests_splits(self):
        deck = advanced_deck(GRID)
        scheduler = MicroBatchScheduler(SchedulerConfig(max_batch_requests=3))
        batches = scheduler.coalesce([_pending(i, deck=deck) for i in range(7)])
        assert [len(b) for b in batches] == [3, 3, 1]
        # Splits keep contiguous arrival ranges.
        assert [e.arrival for b in batches for e in b.entries] == list(range(7))

    def test_max_batch_attempts_splits(self):
        deck = advanced_deck(GRID)
        scheduler = MicroBatchScheduler(SchedulerConfig(max_batch_attempts=10))
        batches = scheduler.coalesce(
            [_pending(i, deck=deck, count=4) for i in range(4)]
        )
        assert [b.attempts for b in batches] == [8, 8]

    def test_oversized_single_request_still_served(self):
        deck = advanced_deck(GRID)
        scheduler = MicroBatchScheduler(SchedulerConfig(max_batch_attempts=2))
        batches = scheduler.coalesce([_pending(0, deck=deck, count=50)])
        assert len(batches) == 1 and batches[0].attempts == 50


class TestPriorities:
    def test_higher_priority_batch_runs_first(self):
        deck = advanced_deck(GRID)
        pending = [
            _pending(0, backend="rule", deck=deck, priority=0),
            _pending(1, backend="solver", deck=deck, priority=5),
        ]
        batches = MicroBatchScheduler().coalesce(pending)
        assert batches[0].entries[0].request.backend == "solver"
        assert batches[0].priority == 5

    def test_priority_does_not_reorder_within_a_batch(self):
        deck = advanced_deck(GRID)
        pending = [
            _pending(0, deck=deck, priority=0),
            _pending(1, deck=deck, priority=9),
        ]
        batches = MicroBatchScheduler().coalesce(pending)
        assert len(batches) == 1
        assert [e.arrival for e in batches[0].entries] == [0, 1]

    def test_equal_priority_ties_break_by_arrival(self):
        deck = advanced_deck(GRID)
        pending = [
            _pending(0, backend="solver", deck=deck),
            _pending(1, backend="rule", deck=deck),
        ]
        batches = MicroBatchScheduler().coalesce(pending)
        assert batches[0].entries[0].request.backend == "solver"
