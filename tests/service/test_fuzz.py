"""Protocol fuzz tests: malformed input never crashes, stalls, or leaks.

Seeded random malformed frames — truncated JSON, wrong-typed fields,
absurd values, binary garbage, oversized lines — are thrown at both
wire fronts.  The contract under fuzz:

* TCP: every response line is a structured JSON event; a connection
  either keeps answering (``ping`` after the garbage still pongs) or
  closes cleanly (EOF) — never a traceback on the wire, never a stall.
* HTTP: every response is a proper status line with a JSON body, or a
  clean close — and the gateway answers ``/v1/healthz`` afterwards.

Timeouts on every read enforce "never a stall": a wedged server fails
the test instead of hanging it.  The same contract is asserted with an
injected fault plan active (the CI chaos job additionally runs this
whole file under ``REPRO_FAULTS`` schedules).
"""

import asyncio
import json
import socket

import pytest

from repro.service import (
    GenerationService,
    ServiceConfig,
    clear_faults,
    install_faults,
    serve,
    serve_http,
)

SEED = 20250808
READ_TIMEOUT = 30


def _fuzz_lines(rng, count):
    """A deterministic corpus of hostile byte lines.

    Mutations are built so that an accidentally *valid* generate request
    stays tiny (count ≤ 8) — the point is protocol robustness, not
    burning CPU on a lucky giant request.
    """
    valid = json.dumps({
        "backend": "rule", "count": 4, "seed": 1, "deck": "basic"
    })
    wrong_typed_values = [
        None, True, -7, 3.5, "zip", "", [1, 2], {"nested": 1}, "\x00",
        "a" * 200,
    ]
    fields = [
        "op", "backend", "count", "seed", "payload", "request_id",
        "session", "priority", "deadline_s", "params", "deck",
    ]
    lines = []
    for _ in range(count):
        mode = int(rng.integers(6))
        if mode == 0:  # truncated JSON
            cut = int(rng.integers(1, len(valid)))
            lines.append(valid[:cut].encode())
        elif mode == 1:  # random field of a valid request wrong-typed
            message = json.loads(valid)
            for _ in range(int(rng.integers(1, 4))):
                field = fields[int(rng.integers(len(fields)))]
                value = wrong_typed_values[
                    int(rng.integers(len(wrong_typed_values)))
                ]
                message[field] = value
            lines.append(json.dumps(message).encode())
        elif mode == 2:  # absurd values in protocol-shaped fields
            message = {
                "op": ["cancel", "payload_page", "x" * 300, 12][
                    int(rng.integers(4))
                ],
                "request_id": ["", "-" * 500, 7, None][int(rng.integers(4))],
                "seq": int(rng.integers(-10, 10)),
                "pages": int(rng.integers(-5, 5)) * 10 ** int(rng.integers(9)),
                "payload": ["none", "b64", "npz", "NPZ", 0][
                    int(rng.integers(5))
                ],
            }
            lines.append(json.dumps(message).encode())
        elif mode == 3:  # valid JSON, non-object
            lines.append(json.dumps(
                [[], 42, "text", None, [1, {"a": 2}]][int(rng.integers(5))]
            ).encode())
        elif mode == 4:  # raw binary garbage (often invalid utf-8)
            lines.append(bytes(rng.integers(0, 256, int(rng.integers(1, 80)),
                                            dtype="uint8").tobytes())
                         .replace(b"\n", b"\xff"))
        else:  # single-character mutation of a valid request
            raw = bytearray(valid.encode())
            raw[int(rng.integers(len(raw)))] = int(rng.integers(32, 127))
            lines.append(bytes(raw))
    return lines


async def _tcp_fuzz_round(port, line):
    """Send one hostile line then a ping; classify the outcome."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(line + b"\n")
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        writer.write_eof()
        frames = []
        while True:
            raw = await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT
            )
            if not raw:
                break
            frames.append(json.loads(raw))
        return frames
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _run_tcp_corpus(lines, *, limit=8192):
    service = GenerationService(ServiceConfig())
    await service.start()
    server = await serve(service, "127.0.0.1", 0, limit=limit)
    port = server.sockets[0].getsockname()[1]
    outcomes = []
    try:
        for line in lines:
            outcomes.append((line, await _tcp_fuzz_round(port, line)))
        # The accept loop survived the whole corpus: a fresh, fully
        # valid request still completes.
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            b'{"backend": "rule", "count": 2, "seed": 1, "deck": "basic"}\n'
        )
        await writer.drain()
        writer.write_eof()
        final = []
        while raw := await asyncio.wait_for(
            reader.readline(), timeout=READ_TIMEOUT
        ):
            final.append(json.loads(raw))
        writer.close()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()
    return outcomes, final


def _assert_tcp_contract(outcomes, final):
    for line, frames in outcomes:
        # Every frame the server wrote parsed as JSON (json.loads in the
        # reader already enforced it); each must be a tagged event.
        for frame in frames:
            assert isinstance(frame, dict) and "event" in frame, (
                line, frame
            )
        # The connection either kept serving (the trailing ping ponged)
        # or closed cleanly after reporting — e.g. an oversized line.
        if not any(f["event"] == "pong" for f in frames):
            assert frames and frames[-1]["event"] == "error", (line, frames)
    assert [f["event"] for f in final][-1] == "result"


class TestTcpFuzz:
    def test_seeded_corpus_never_breaks_the_server(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(SEED)
        lines = _fuzz_lines(rng, 60)
        # Oversized-line cases: beyond the 8 KiB test limit.
        lines.append(b'{"backend": "' + b"A" * 16384 + b'"}')
        lines.append(b"B" * 16384)
        outcomes, final = asyncio.run(_run_tcp_corpus(lines))
        _assert_tcp_contract(outcomes, final)

    def test_corpus_under_injected_faults(self):
        """Same contract while a fault plan is firing service-side."""
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(SEED + 1)
        install_faults("model:raise@1,drc:raise@2")
        try:
            outcomes, final = asyncio.run(
                _run_tcp_corpus(_fuzz_lines(rng, 20))
            )
        finally:
            clear_faults()
        _assert_tcp_contract(outcomes, final)

    def test_pipelined_garbage_between_valid_requests(self):
        """Garbage interleaved with real work corrupts neither."""

        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            server = await serve(service, "127.0.0.1", 0, limit=8192)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    b'{"backend": "rule", "count": 2, "seed": 1, '
                    b'"deck": "basic", "request_id": "ok-1"}\n'
                    b'{"op": 42}\n'
                    b'not json at all\n'
                    b'{"backend": "rule", "count": 2, "seed": 2, '
                    b'"deck": "basic", "request_id": "ok-2"}\n'
                )
                await writer.drain()
                writer.write_eof()
                frames = []
                while raw := await asyncio.wait_for(
                    reader.readline(), timeout=READ_TIMEOUT
                ):
                    frames.append(json.loads(raw))
                writer.close()
                return frames
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        frames = asyncio.run(run())
        results = [f for f in frames if f["event"] == "result"]
        assert {f["request_id"] for f in results} == {"ok-1", "ok-2"}
        assert len([f for f in frames if f["event"] == "error"]) == 2


def _http_fuzz_payloads(rng, count):
    """Raw byte blobs thrown at the HTTP listener (seeded)."""
    base = (
        b"POST /v1/generate HTTP/1.1\r\nHost: x\r\n"
        b"Content-Length: 20\r\n\r\n"
        b'{"backend": "rule"}\n'
    )
    payloads = [
        b"",                                   # immediate close
        b"\r\n\r\n",
        b"GET\r\n\r\n",                        # malformed request line
        b"FROB /v1/stats HTTP/1.1\r\n\r\n",    # unknown method, known path
        b"GET /v1/stats SPDY/9\r\n\r\n",       # unsupported protocol
        b"GET /v1/stats HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET /v1/stats HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /v1/generate HTTP/1.1\r\nContent-Length: 999\r\n\r\nshort",
        b"\xff\xfe garbage \x00\r\n\r\n",
        b"GET " + b"/a" * 5000 + b" HTTP/1.1\r\n\r\n",  # huge path
    ]
    for _ in range(count):
        raw = bytearray(base)
        for _ in range(int(rng.integers(1, 6))):
            raw[int(rng.integers(len(raw)))] = int(rng.integers(0, 256))
        payloads.append(bytes(raw))
    return payloads


async def _http_fuzz_round(port, payload):
    """Fire raw bytes, half-close, read whatever comes back."""

    def roundtrip():
        with socket.create_connection(
            ("127.0.0.1", port), timeout=READ_TIMEOUT
        ) as sock:
            if payload:
                sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            received = b""
            while block := sock.recv(65536):
                received += block
            return received

    return await asyncio.to_thread(roundtrip)


class TestHttpFuzz:
    def test_seeded_corpus_never_breaks_the_gateway(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(SEED + 2)

        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            gateway = await serve_http(service, "127.0.0.1", 0)
            port = gateway.server.sockets[0].getsockname()[1]
            responses = []
            try:
                for payload in _http_fuzz_payloads(rng, 40):
                    responses.append(
                        (payload, await _http_fuzz_round(port, payload))
                    )
                health = await _http_fuzz_round(
                    port, b"GET /v1/healthz HTTP/1.1\r\n\r\n"
                )
            finally:
                await gateway.close()
                await service.stop()
            return responses, health

        responses, health = asyncio.run(run())
        for payload, raw in responses:
            if not raw:
                continue  # clean close with no response: allowed
            # A proper status line with a JSON body — never a traceback.
            head, _, rest = raw.partition(b"\r\n")
            assert head.startswith(b"HTTP/1.1 "), (payload, head)
            status = int(head.split()[1])
            assert 200 <= status <= 599
            body = rest.split(b"\r\n\r\n", 1)[1]
            parsed = json.loads(body)
            assert isinstance(parsed, dict)
            assert b"Traceback" not in raw
        assert b"HTTP/1.1 200" in health

    def test_gateway_under_injected_faults(self):
        np = pytest.importorskip("numpy")
        rng = np.random.default_rng(SEED + 3)
        install_faults("model:raise@1")

        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            gateway = await serve_http(service, "127.0.0.1", 0)
            port = gateway.server.sockets[0].getsockname()[1]
            try:
                for payload in _http_fuzz_payloads(rng, 10):
                    await _http_fuzz_round(port, payload)
                return await _http_fuzz_round(
                    port, b"GET /v1/healthz HTTP/1.1\r\n\r\n"
                )
            finally:
                await gateway.close()
                await service.stop()

        try:
            health = asyncio.run(run())
        finally:
            clear_faults()
        assert b"HTTP/1.1 200" in health
