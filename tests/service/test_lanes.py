"""Worker lanes: routing, determinism across lane counts, crash isolation,
arrival-ordered cross-lane admissions, and the per-stage histograms."""

import threading

import numpy as np
import pytest

from repro.core.library import PatternLibrary
from repro.drc import advanced_deck
from repro.engine import GenerationRequest, get_backend, run_generation
from repro.geometry import Grid
from repro.service import (
    STAGES,
    LaneManager,
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
)

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


def _mixed_requests(deck, *, keys=3, per_key=2, count=4, base_seed=0):
    """Requests spanning ``keys`` compatibility keys (distinct params)."""
    return [
        GenerationRequest(
            backend="rule", count=count, seed=base_seed + 10 * k + j,
            deck=deck, params={"variant": k},
        )
        for k in range(keys)
        for j in range(per_key)
    ]


def _assert_batches_identical(a, b):
    assert a.attempts == b.attempts
    assert len(a.clips) == len(b.clips)
    for x, y in zip(a.clips, b.clips):
        np.testing.assert_array_equal(x, y)
    np.testing.assert_array_equal(a.legal, b.legal)
    assert a.admitted == b.admitted


class TestLaneManagerRouting:
    def _manager(self, count, **kwargs):
        return LaneManager(count, backend_factory=get_backend, **kwargs)

    def test_sticky_key_keeps_its_lane(self):
        manager = self._manager(2)
        try:
            first = manager.lane_for(("a",))
            for _ in range(5):
                assert manager.lane_for(("a",)) is first
        finally:
            manager.close()

    def test_distinct_keys_spread_across_lanes(self):
        manager = self._manager(3)
        try:
            lanes = {manager.lane_for((name,)).lane_id for name in "abc"}
            assert lanes == {0, 1, 2}
        finally:
            manager.close()

    def test_new_key_claims_least_recently_used_lane(self):
        manager = self._manager(2)
        try:
            lane_a = manager.lane_for(("a",))
            lane_b = manager.lane_for(("b",))
            manager.lane_for(("a",))  # lane_b is now the LRU lane
            assert manager.lane_for(("c",)) is lane_b
            # "a" stayed sticky through the claim.
            assert manager.lane_for(("a",)) is lane_a
        finally:
            manager.close()

    def test_key_map_is_lru_bounded(self):
        manager = self._manager(1, max_keys=2)
        try:
            for name in "abc":
                manager.lane_for((name,))
            assignments = manager.assignments()
            assert len(assignments) == 2
            assert ("a",) not in assignments  # oldest mapping evicted
            assert manager.lanes[0].stats.keys == 2
        finally:
            manager.close()

    def test_more_keys_than_lanes_share(self):
        manager = self._manager(2)
        try:
            lanes = [manager.lane_for((name,)).lane_id for name in "abcd"]
            assert set(lanes) == {0, 1}
        finally:
            manager.close()

    def test_lane_count_validation(self):
        with pytest.raises(ValueError):
            LaneManager(0, backend_factory=get_backend)


class TestLaneDeterminism:
    """Acceptance: served output bit-identical to serial for lanes 1/2/4."""

    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_mixed_keys_bit_identical_to_serial(self, deck, lanes):
        requests = _mixed_requests(deck, keys=3, per_key=2, base_seed=100)
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            lanes=lanes,
            scheduler=SchedulerConfig(gather_window_s=0.02),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        for reference, got in zip(serial, served):
            _assert_batches_identical(reference, got)
        assert len(stats.lanes) == lanes
        if lanes > 1:
            assert sum(
                1 for lane in stats.lanes.values() if lane.micro_batches
            ) > 1, "mixed keys never spread across lanes"

    def test_pooled_lanes_bit_identical_to_serial(self, deck):
        # jobs>1 executors sharing one PoolRegistry across lanes.
        requests = _mixed_requests(
            deck, keys=2, per_key=2, count=5, base_seed=200
        )
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            lanes=2, jobs=3,
            scheduler=SchedulerConfig(gather_window_s=0.02),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
        for reference, got in zip(serial, served):
            _assert_batches_identical(reference, got)

    def test_threaded_clients_bit_identical_to_serial(self, deck):
        requests = _mixed_requests(
            deck, keys=4, per_key=2, count=3, base_seed=300
        )
        serial = [run_generation(request) for request in requests]
        results = [None] * len(requests)
        with ServiceClient(ServiceConfig(lanes=4)) as client:
            def worker(i):
                results[i] = client.generate(requests[i])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(requests))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for reference, got in zip(serial, results):
            _assert_batches_identical(reference, got)

    def test_cross_lane_session_admissions_in_arrival_order(self, deck):
        """The ordered commit stage: lanes finish out of order, but the
        session store must grow exactly like a serial loop."""
        requests = _mixed_requests(
            deck, keys=3, per_key=2, count=4, base_seed=400
        )
        reference = PatternLibrary(name="ref")
        for request in requests:
            run_generation(request, library=reference)

        for trial in range(2):
            config = ServiceConfig(
                lanes=3,
                scheduler=SchedulerConfig(gather_window_s=0.02),
            )
            with ServiceClient(config) as client:
                client.generate_many(requests, session="tenant")
                store = client.service.sessions.get("tenant").store
            assert len(store) == len(reference)
            for a, b in zip(reference, store):
                np.testing.assert_array_equal(a, b)


class TestLaneCrashIsolation:
    def test_lane_crash_spares_other_lanes_and_admission_order(self, deck):
        """A backend blowing up on its own lane must fail only its
        requests; co-arriving keys on other lanes still serve, and the
        session store still matches the serial reference of the
        surviving requests in arrival order."""
        from repro.engine import register_backend

        class ExplodingBackend:
            name = "test-lane-bomb"

            def __init__(self, deck=None):
                self._deck = deck

            @property
            def deck(self):
                return self._deck

            def propose(self, request, rng):
                raise RuntimeError("lane bomb")

        register_backend("test-lane-bomb", ExplodingBackend, overwrite=True)
        good = _mixed_requests(deck, keys=2, per_key=2, count=4, base_seed=500)
        bad = [
            GenerationRequest(backend="test-lane-bomb", count=1, deck=deck)
            for _ in range(2)
        ]
        # Interleave: good, bad, good, bad, good, good (arrival order).
        submissions = [good[0], bad[0], good[1], bad[1], good[2], good[3]]
        reference = PatternLibrary(name="ref")
        for request in good:
            run_generation(request, library=reference)

        config = ServiceConfig(
            lanes=3,
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            tickets = [
                client.submit(request, session="t") for request in submissions
            ]
            outcomes = []
            for request, ticket in zip(submissions, tickets):
                if request.backend == "test-lane-bomb":
                    with pytest.raises(RuntimeError, match="lane bomb"):
                        ticket.result(timeout=60)
                else:
                    outcomes.append(ticket.result(timeout=60))
            stats = client.service.stats
            store = client.service.sessions.get("t").store
            assert len(store) == len(reference)
            for a, b in zip(reference, store):
                np.testing.assert_array_equal(a, b)
        assert stats.failed == len(bad)
        assert stats.completed == len(good)
        assert sum(lane.failures for lane in stats.lanes.values()) == len(bad)

    def test_service_survives_crash_for_later_requests(self, deck):
        from repro.engine import register_backend

        class ExplodingBackend:
            name = "test-lane-bomb"

            def __init__(self, deck=None):
                self._deck = deck

            @property
            def deck(self):
                return self._deck

            def propose(self, request, rng):
                raise RuntimeError("lane bomb")

        register_backend("test-lane-bomb", ExplodingBackend, overwrite=True)
        with ServiceClient(ServiceConfig(lanes=2)) as client:
            bomb = client.submit(
                GenerationRequest(backend="test-lane-bomb", count=1, deck=deck)
            )
            with pytest.raises(RuntimeError, match="lane bomb"):
                bomb.result(timeout=60)
            # The crashed lane's thread and the commit stage both
            # survived: later requests (any key) still serve.
            after = client.generate(
                GenerationRequest(backend="rule", count=3, seed=9, deck=deck),
                timeout=60,
            )
            assert after.legal_count == 3


class TestLaneTelemetry:
    def test_stage_histograms_cover_every_request(self, deck):
        requests = _mixed_requests(deck, keys=2, per_key=2, base_seed=600)
        with ServiceClient(ServiceConfig(lanes=2)) as client:
            client.generate_many(requests)
            stats = client.service.stats
            depths = client.service.queue_depths()
        n = len(requests)
        for stage in STAGES:
            assert stats.stages[stage].count == n, stage
        lane_totals = {
            stage: sum(
                lane.stages[stage].count for lane in stats.lanes.values()
            )
            for stage in STAGES
        }
        assert lane_totals == {stage: n for stage in STAGES}
        assert sum(lane.requests for lane in stats.lanes.values()) == n
        assert all(lane.depth == 0 for lane in stats.lanes.values())
        assert all(
            lane.busy_seconds >= 0.0 for lane in stats.lanes.values()
        )
        # The queue-depth story: global submit queue + per-lane backlogs.
        assert depths["submit"] == 0
        assert depths["in_flight"] == 0
        assert set(depths["lanes"]) == set(stats.lanes)

    def test_lanes_env_var_sets_default(self, deck, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LANES", "3")
        config = ServiceConfig()
        assert config.lanes == 3
        # An explicit value wins over the environment.
        assert ServiceConfig(lanes=1).lanes == 1
        with ServiceClient(config) as client:
            client.generate(
                GenerationRequest(backend="rule", count=2, deck=deck)
            )
            assert len(client.service.stats.lanes) == 3

    def test_invalid_lanes_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_LANES", "many")
        with pytest.raises(ValueError, match="REPRO_SERVICE_LANES"):
            ServiceConfig()

    def test_lane_count_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(lanes=0)
