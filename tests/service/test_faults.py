"""Chaos suite: deterministic fault injection across the serving stack.

Every test drives a real failure through the real recovery path — retry,
pool rebuild, breaker degrade, deadline drop, cancellation, torn
checkpoint — under a :class:`~repro.service.FaultPlan`, and asserts the
tentpole contracts: surviving requests are **bit-identical** to a
fault-free serial run, every failed/cancelled/expired request gets
**exactly one** terminal error, and the ordered commit stage never
stalls (every ticket resolves) at any lane count.
"""

import json

import numpy as np
import pytest

from repro.core import PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import basic_deck
from repro.engine import (
    GenerationRequest,
    RetryPolicy,
    register_backend,
    run_generation,
)
from repro.engine.backends import PatternPaintBackend
from repro.geometry import Grid
from repro.library import ShardedStore, load_library, save_library
from repro.nn import TimeUnet, UNetConfig
from repro.service import (
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RequestCancelled,
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
    active_plan,
    clear_faults,
    injection_stats,
    install_faults,
    maybe_fire,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    """No plan leaks into (or out of) any test."""
    clear_faults()
    yield
    clear_faults()


def _rule_requests(n, *, count=3, base_seed=0):
    return [
        GenerationRequest(backend="rule", count=count, seed=base_seed + i)
        for i in range(n)
    ]


def _assert_batches_identical(a, b):
    assert a.attempts == b.attempts
    assert len(a.clips) == len(b.clips)
    for x, y in zip(a.clips, b.clips):
        np.testing.assert_array_equal(x, y)
    np.testing.assert_array_equal(a.legal, b.legal)
    assert a.admitted == b.admitted


# ----------------------------------------------------------------------
# Plan parsing and the injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse("model:raise@2, pool:crash@1,snapshot:torn,")
        assert [str(s) for s in plan] == [
            "model:raise@2", "pool:crash@1", "snapshot:torn@1",
        ]

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(ValueError, match="bad fault entry"):
            FaultPlan.parse("model")
        with pytest.raises(ValueError, match="occurrence"):
            FaultPlan.parse("model:raise@soon")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("warp:raise@1")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan.parse("model:explode@1")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("model", "raise", 0)
        with pytest.raises(ValueError):
            FaultSpec("nowhere", "raise")


class TestInjector:
    def test_fires_at_the_named_occurrence_exactly_once(self):
        install_faults("model:raise@2")
        assert maybe_fire("model") is None  # call 1: no fault
        with pytest.raises(InjectedFault):
            maybe_fire("model")  # call 2: fires
        assert maybe_fire("model") is None  # call 3: spent
        stats = injection_stats()
        assert stats["installed"] is True
        assert stats["fired"] == ["model:raise@2"]
        assert stats["calls"]["model"] == 3
        assert stats["pending"] == 0

    def test_non_raise_actions_are_returned_for_the_site(self):
        install_faults("snapshot:torn@1")
        assert maybe_fire("snapshot") == "torn"
        assert maybe_fire("snapshot") is None

    def test_sites_count_independently(self):
        install_faults("model:raise@1,drc:raise@1")
        # Each site keeps its own occurrence counter: both @1 specs fire.
        with pytest.raises(InjectedFault):
            maybe_fire("drc")
        with pytest.raises(InjectedFault):
            maybe_fire("model")
        assert injection_stats()["pending"] == 0

    def test_protected_scope_fires_only_inside_protected_regions(self):
        from repro.service.faults import protected

        install_faults("model:raise@1", scope="protected")
        # Unprotected calls neither fire nor advance the counter...
        assert maybe_fire("model") is None
        assert injection_stats()["calls"] == {}
        # ...so the first *protected* call is occurrence 1 and fires.
        with protected():
            with pytest.raises(InjectedFault):
                maybe_fire("model")
        assert injection_stats()["fired"] == ["model:raise@1"]
        assert injection_stats()["scope"] == "protected"

    def test_protected_scope_plan_covers_a_served_request(self):
        # The service marks its retried stages as protected regions, so
        # an env-style protected plan injects into a served request and
        # is recovered transparently — while a bare run_generation of
        # the same request (unprotected engine path) never sees it.
        from repro.engine import run_generation

        request = _rule_requests(1)[0]
        reference = run_generation(request)
        install_faults("model:raise@1", scope="protected")
        assert run_generation(_rule_requests(1)[0]).attempts  # untouched
        assert injection_stats()["fired"] == []
        with ServiceClient(ServiceConfig()) as client:
            served = client.generate(_rule_requests(1)[0])
        assert injection_stats()["fired"] == ["model:raise@1"]
        assert client.service.stats.retries == 1
        _assert_batches_identical(served, reference)

    def test_install_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            install_faults("model:raise@1", scope="everywhere")

    def test_install_replaces_and_clear_disarms(self):
        install_faults("model:raise@1")
        assert len(active_plan()) == 1
        install_faults(FaultPlan((FaultSpec("drc", "raise"),)))
        assert [s.site for s in active_plan()] == ["drc"]
        clear_faults()
        assert active_plan() is None
        assert injection_stats() == {"installed": False, "fired": []}
        assert maybe_fire("model") is None  # disarmed sites are no-ops


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_s_validation(self):
        with pytest.raises(ValueError):
            GenerationRequest(backend="rule", count=1, deadline_s=0.0)
        with pytest.raises(ValueError):
            GenerationRequest(backend="rule", count=1, deadline_s=-2.0)
        with pytest.raises(ValueError):
            GenerationRequest(backend="rule", count=1, deadline_s=float("inf"))
        with pytest.raises(ValueError):
            GenerationRequest(backend="rule", count=1, deadline_s=True)

    def test_expired_request_fails_with_exactly_one_error(self):
        with ServiceClient(ServiceConfig()) as client:
            ticket = client.submit(GenerationRequest(
                backend="rule", count=2, seed=0, deadline_s=1e-9,
            ))
            with pytest.raises(DeadlineExceeded, match="deadline"):
                ticket.result(timeout=60)
            stats = client.service.stats
            assert stats.deadline_drops == 1
            assert stats.failed == 1
            assert stats.completed == 0

    def test_generous_deadline_serves_normally(self):
        request = GenerationRequest(backend="rule", count=3, seed=5)
        reference = run_generation(request)
        with ServiceClient(ServiceConfig()) as client:
            served = client.generate(GenerationRequest(
                backend="rule", count=3, seed=5, deadline_s=300.0,
            ))
            assert client.service.stats.deadline_drops == 0
        _assert_batches_identical(reference, served)

    def test_expired_request_never_stalls_later_commits(self):
        # The expired request still emits its commit token, so requests
        # behind it in arrival order commit normally.
        with ServiceClient(ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )) as client:
            doomed = client.submit(GenerationRequest(
                backend="rule", count=2, seed=0, deadline_s=1e-9,
            ))
            healthy = [client.submit(r) for r in _rule_requests(3, base_seed=1)]
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=60)
            for ticket in healthy:
                ticket.result(timeout=60)  # must not hang
            assert client.service.stats.completed == 3


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_unknown_or_done_request_returns_false(self):
        with ServiceClient(ServiceConfig()) as client:
            assert client.service.cancel("no-such-id") is False
            ticket = client.submit(_rule_requests(1)[0])
            ticket.result(timeout=60)
            assert client.service.cancel(ticket.request_id) is False

    def test_cancelled_request_fails_with_request_cancelled(self):
        # A wide gather window keeps the request at the dispatch boundary
        # long enough for the cancel to land deterministically.
        config = ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.5),
        )
        with ServiceClient(config) as client:
            ticket = client.submit(_rule_requests(1)[0])
            assert ticket.cancel() is True
            with pytest.raises(RequestCancelled):
                ticket.result(timeout=60)
            stats = client.service.stats
            assert stats.cancelled == 1
            assert stats.failed == 1

    def test_result_timeout_cancels_the_request(self):
        # Satellite: a caller that gives up does not leak the request —
        # the timeout cancels it service-side.
        config = ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.5),
        )
        with ServiceClient(config) as client:
            ticket = client.submit(_rule_requests(1)[0])
            with pytest.raises(TimeoutError, match="cancellation requested"):
                ticket.result(timeout=0.01)
            with pytest.raises(RequestCancelled):
                ticket.result(timeout=60)
            assert client.service.stats.cancelled == 1


# ----------------------------------------------------------------------
# Retry and degradation
# ----------------------------------------------------------------------
class TestRetryRecovery:
    def test_injected_model_fault_is_retried_bit_identically(self):
        """Tentpole: a transient model-stage fault is retried with a
        re-seeded rng; the served result equals the fault-free run."""
        requests = _rule_requests(3, base_seed=10)
        reference = [run_generation(r) for r in requests]
        install_faults("model:raise@1")
        with ServiceClient(ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        assert injection_stats()["fired"] == ["model:raise@1"]
        assert stats.retries == 1
        assert stats.failed == 0
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)

    def test_injected_drc_fault_is_retried_bit_identically(self):
        requests = _rule_requests(2, base_seed=30)
        reference = [run_generation(r) for r in requests]
        install_faults("drc:raise@1")
        with ServiceClient(ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        assert stats.retries >= 1
        assert stats.failed == 0
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)

    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_exhausted_retries_fail_exactly_one_request(self, lanes):
        """Tentpole: with retries disabled, one injected fault fails
        exactly one request; survivors are bit-identical and the ordered
        commit stage never stalls — at any lane count."""
        requests = _rule_requests(4, base_seed=50)
        reference = [run_generation(r) for r in requests]
        install_faults("model:raise@1")
        config = ServiceConfig(
            lanes=lanes,
            retry=RetryPolicy(max_attempts=1),
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            tickets = [client.submit(r) for r in requests]
            outcomes = []
            for ticket in tickets:
                try:
                    outcomes.append(ticket.result(timeout=120))
                except InjectedFault as error:
                    outcomes.append(error)
            stats = client.service.stats
        failures = [o for o in outcomes if isinstance(o, Exception)]
        assert len(failures) == 1, "exactly one terminal error expected"
        assert stats.failed == 1
        assert stats.completed == len(requests) - 1
        assert stats.retries == 0
        for outcome, ref in zip(outcomes, reference):
            if not isinstance(outcome, Exception):
                _assert_batches_identical(outcome, ref)

    def test_admit_fault_fails_only_its_request(self):
        requests = _rule_requests(3, base_seed=70)
        reference = [run_generation(r) for r in requests]
        install_faults("admit:raise@1")
        with ServiceClient(ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )) as client:
            tickets = [client.submit(r) for r in requests]
            outcomes = []
            for ticket in tickets:
                try:
                    outcomes.append(ticket.result(timeout=120))
                except InjectedFault as error:
                    outcomes.append(error)
            stats = client.service.stats
        failures = [o for o in outcomes if isinstance(o, Exception)]
        assert len(failures) == 1
        assert stats.failed == 1
        assert stats.completed == 2
        for outcome, ref in zip(outcomes, reference):
            if not isinstance(outcome, Exception):
                _assert_batches_identical(outcome, ref)


# ----------------------------------------------------------------------
# Pool supervision (crash + rebuild, breaker degrade)
# ----------------------------------------------------------------------
GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)

_TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=23,
)

_DDPM = Ddpm(TimeUnet(_TINY), linear_schedule(20))

_STARTERS = [
    np.random.default_rng(90 + i).integers(0, 2, (16, 16)).astype(np.uint8)
    for i in range(3)
]


def _pp_factory(deck=None, **tuning):
    return PatternPaintBackend(
        deck=deck if deck is not None else basic_deck(GRID),
        ddpm=_DDPM,
        config=PatternPaintConfig(
            inpaint=InpaintConfig(num_steps=2), model_batch=4
        ),
        templates=_STARTERS,
        **tuning,
    )


register_backend("pp-faults-test", _pp_factory, overwrite=True)


class TestPoolSupervision:
    def _requests(self, deck):
        # Two compatible requests, count=8 over model_batch=4: four
        # packed model batches, so the pooled packed dispatch
        # (model_jobs=2) on the lane executor actually engages.
        return [
            GenerationRequest(
                backend="pp-faults-test", count=8, seed=s, deck=deck,
            )
            for s in (7, 8)
        ]

    def _config(self):
        return ServiceConfig(
            exec_mode="packed", model_jobs=2,
            scheduler=SchedulerConfig(gather_window_s=0.2),
        )

    def test_pool_crash_rebuilds_and_stays_bit_identical(self):
        """Tentpole: a dead process pool is rebuilt once and the dispatch
        retried; output equals the fault-free serial run."""
        deck = basic_deck(GRID)
        requests = self._requests(deck)
        reference = [run_generation(r) for r in requests]
        install_faults("pool:crash@1")
        with ServiceClient(self._config()) as client:
            served = client.generate_many(requests)
            health = client.service.health()
            rebuilds = client.service.lanes.pools.rebuilds
        assert injection_stats()["fired"] == ["pool:crash@1"], (
            "the pooled packed dispatch never engaged"
        )
        assert rebuilds == 1
        assert health["pool_rebuilds"] == 1
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)

    def test_open_breaker_degrades_to_serial_bit_identically(self):
        """Tentpole: with the pool breaker open, the packed stage takes
        the degraded serial loop — same bits — and health says so."""
        deck = basic_deck(GRID)
        requests = self._requests(deck)
        reference = [run_generation(r) for r in requests]
        with ServiceClient(self._config()) as client:
            breaker = client.service.lanes.pools.breakers.get(("process", 2))
            for _ in range(breaker.threshold):
                breaker.record_failure()
            assert not breaker.allow()
            served = client.generate_many(requests)
            health = client.service.health()
        assert health["status"] == "degraded"
        assert any(
            entry["state"] == "open" and entry["pool"] == "process"
            for entry in health["breakers"]
        )
        assert health["breaker_trips"] >= 1
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)


# ----------------------------------------------------------------------
# Crash-safe checkpoints under injection
# ----------------------------------------------------------------------
def _clip(seed):
    img = np.zeros((8, 8), dtype=np.uint8)
    img[:, seed % 5: seed % 5 + 2 + seed % 3] = 1
    return img


def _same_library(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestSnapshotFaults:
    def test_torn_snapshot_loses_only_the_new_generation(self, tmp_path):
        """Tentpole: a torn write during checkpoint N+1 leaves the
        directory loading checkpoint N."""
        first = [_clip(i) for i in range(6)]
        store = ShardedStore(list(first), num_shards=2, name="chk")
        save_library(store, tmp_path / "lib")
        store.admit(_clip(7))
        install_faults("snapshot:torn@1")
        with pytest.raises(InjectedFault):
            save_library(store, tmp_path / "lib")
        clear_faults()
        _same_library(load_library(tmp_path / "lib"),
                      ShardedStore(first, num_shards=2))

    def test_crash_before_manifest_promotion_keeps_current(self, tmp_path):
        first = [_clip(i) for i in range(5)]
        store = ShardedStore(list(first), num_shards=1, name="chk")
        save_library(store, tmp_path / "lib")
        store.admit(_clip(6))
        install_faults("snapshot:crash@1")
        with pytest.raises(InjectedFault):
            save_library(store, tmp_path / "lib")
        clear_faults()
        # The manifest was never promoted: the old generation still loads,
        # and the next save supersedes the orphaned shard files cleanly.
        _same_library(load_library(tmp_path / "lib"),
                      ShardedStore(first, num_shards=1))
        save_library(store, tmp_path / "lib")
        _same_library(load_library(tmp_path / "lib"), store)

    def test_raise_action_aborts_before_writing(self, tmp_path):
        store = ShardedStore([_clip(i) for i in range(4)], num_shards=1)
        save_library(store, tmp_path / "lib")
        before = sorted(p.name for p in (tmp_path / "lib").iterdir())
        install_faults("snapshot:raise@1")
        with pytest.raises(InjectedFault):
            save_library(store, tmp_path / "lib")
        clear_faults()
        assert sorted(p.name for p in (tmp_path / "lib").iterdir()) == before

    def test_session_with_unloadable_snapshot_starts_cold(self, tmp_path):
        """Satellite: a session whose snapshot is torn beyond fallback
        serves from an empty store instead of refusing the tenant."""
        from repro.library import MANIFEST_NAME
        from repro.service import SessionConfig, SessionManager

        root = tmp_path / "sessions"
        store = ShardedStore([_clip(i) for i in range(4)], num_shards=1)
        save_library(store, root / "tenant")
        (root / "tenant" / MANIFEST_NAME).write_text("torn{")
        manager = SessionManager(SessionConfig(snapshot_root=root))
        session = manager.get("tenant")
        assert len(session.store) == 0
        assert manager.load_fallbacks == 1


# ----------------------------------------------------------------------
# Torn auxiliary state: tuner store and DRC cache files
# ----------------------------------------------------------------------
class TestTornStateTolerance:
    def test_torn_tuner_store_loads_as_empty(self, tmp_path):
        from repro.engine import ExecutionTuner

        path = ExecutionTuner.store_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"entries": {"half a json')
        tuner = ExecutionTuner(store_dir=tmp_path)
        assert tuner.loaded == 0  # tolerated, not raised

    def test_torn_drc_cache_file_is_skipped(self, tmp_path):
        from repro.drc.cache import load_shared_caches

        (tmp_path / "drc-deadbeefdeadbeef.json").write_text('{"fmt": tor')
        assert load_shared_caches(tmp_path) == 0


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_refuses_new_work_and_finishes_inflight(self):
        import asyncio

        with ServiceClient(ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.02),
        )) as client:
            tickets = [client.submit(r) for r in _rule_requests(3)]
            drained = asyncio.run_coroutine_threadsafe(
                client.service.drain(timeout=60), client._loop
            ).result(timeout=120)
            assert drained is True
            with pytest.raises(RuntimeError, match="draining"):
                client.submit(_rule_requests(1, base_seed=9)[0])
            for ticket in tickets:
                ticket.result(timeout=60)  # in-flight work completed
            assert client.service.health()["draining"] is True
