"""Cross-request packed serving: scheduler plans, determinism, fallbacks."""

import threading

import numpy as np
import pytest

from repro.core import PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import basic_deck
from repro.engine import GenerationRequest, register_backend, run_generation
from repro.engine.backends import PatternPaintBackend
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig
from repro.service import (
    MicroBatchScheduler,
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
)

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)

TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=5,
)

_DDPM = Ddpm(TimeUnet(TINY), linear_schedule(20))

_STARTERS = [
    np.random.default_rng(40 + i).integers(0, 2, (16, 16)).astype(np.uint8)
    for i in range(3)
]

_PP_CONFIG = PatternPaintConfig(
    inpaint=InpaintConfig(num_steps=2), model_batch=4
)


def _pp_factory(deck=None):
    """The real pack-capable backend over an injected tiny model."""
    return PatternPaintBackend(
        deck=deck if deck is not None else basic_deck(GRID),
        ddpm=_DDPM,
        config=_PP_CONFIG,
        templates=_STARTERS,
    )


register_backend("pp-pack-test", _pp_factory, overwrite=True)


class _BrokenPackBackend(PatternPaintBackend):
    """Pack hooks present but exploding: exercises the fallback path."""

    name = "pp-broken-pack"

    def pack_model_fn(self):
        def packed_fn(seg_templates, seg_masks, seg_rngs):
            raise RuntimeError("packed sampler exploded")

        return packed_fn


register_backend(
    "pp-broken-pack",
    lambda deck=None: _BrokenPackBackend(
        deck=deck if deck is not None else basic_deck(GRID),
        ddpm=_DDPM,
        config=_PP_CONFIG,
        templates=_STARTERS,
    ),
    overwrite=True,
)


@pytest.fixture(scope="module")
def deck():
    return basic_deck(GRID)


def _requests(deck, n, *, backend="pp-pack-test", count=3, base_seed=0,
              params=None):
    return [
        GenerationRequest(
            backend=backend, count=count, seed=base_seed + i, deck=deck,
            params=params or {},
        )
        for i in range(n)
    ]


def _assert_batches_identical(a, b):
    assert a.attempts == b.attempts
    assert len(a.clips) == len(b.clips)
    for x, y in zip(a.clips, b.clips):
        np.testing.assert_array_equal(x, y)
    np.testing.assert_array_equal(a.legal, b.legal)
    assert a.admitted == b.admitted


class TestSchedulerPack:
    def test_micro_batch_chunks_interleave(self):
        scheduler = MicroBatchScheduler()
        plan = scheduler.pack([3, 3, 3], 8)
        assert plan.capacity == 8
        assert len(plan.batches) == 2  # 3+3 <= 8, third chunk spills
        assert plan.packed_jobs == 9

    def test_pack_is_pure_and_deterministic(self):
        scheduler = MicroBatchScheduler()
        assert scheduler.pack([5, 2], 4).batches == scheduler.pack(
            [5, 2], 4
        ).batches

    def test_differing_params_never_share_a_micro_batch(self, deck):
        """Satellite: compatibility-key collisions cannot co-pack.

        Packing plans are emitted per micro-batch, and coalesce() keys
        micro-batches on the full compatibility key — so two requests
        with different params can never reach one packing plan.
        """
        from repro.service.scheduler import PendingRequest

        scheduler = MicroBatchScheduler(SchedulerConfig())
        a = GenerationRequest(
            backend="pp-pack-test", count=2, seed=0, deck=deck,
            params={"flavour": "a"},
        )
        b = GenerationRequest(
            backend="pp-pack-test", count=2, seed=0, deck=deck,
            params={"flavour": "b"},
        )
        twin = GenerationRequest(
            backend="pp-pack-test", count=2, seed=1, deck=deck,
            params={"flavour": "a"},
        )
        pending = [
            PendingRequest(arrival=i, request=r)
            for i, r in enumerate([a, b, twin])
        ]
        batches = scheduler.coalesce(pending)
        assert len(batches) == 2
        by_key = {batch.key: batch for batch in batches}
        assert len(by_key) == 2
        # Equal params coalesce; differing params stay apart.
        sizes = sorted(len(batch) for batch in batches)
        assert sizes == [1, 2]


class TestPackedServingDeterminism:
    def test_packed_service_bit_identical_to_serial(self, deck):
        """Tentpole: packed cross-request serving == serial run_generation."""
        requests = _requests(deck, 6, base_seed=100)
        serial = [run_generation(request) for request in requests]
        # exec_mode is pinned: this test asserts packing *engages*, so it
        # must not inherit a serial/pooled $REPRO_EXEC_MODE from the CI
        # matrix (outputs are mode-independent either way).
        config = ServiceConfig(
            exec_mode="packed",
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        assert stats.packed_jobs > 0, "packing never engaged"
        assert stats.packed_fallbacks == 0
        assert stats.peak_coalesced > 1
        for a, b in zip(serial, served):
            _assert_batches_identical(a, b)

    def test_threaded_clients_bit_identical_under_packing(self, deck):
        """Tentpole: determinism holds for concurrent TCP-like clients."""
        requests = _requests(deck, 5, count=2, base_seed=200)
        serial = [run_generation(request) for request in requests]
        results: dict[int, object] = {}
        config = ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05)
        )
        with ServiceClient(config) as client:
            barrier = threading.Barrier(len(requests))

            def worker(i):
                barrier.wait()
                results[i] = client.generate(requests[i])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(requests))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, reference in enumerate(serial):
            _assert_batches_identical(reference, results[i])

    def test_jobs_gt_one_bit_identical_under_packing(self, deck):
        requests = _requests(deck, 4, base_seed=300)
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            jobs=2, exec_mode="packed",
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            assert client.service.stats.packed_jobs > 0
        for a, b in zip(serial, served):
            _assert_batches_identical(a, b)

    def test_pack_disabled_still_bit_identical(self, deck):
        requests = _requests(deck, 4, base_seed=400)
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            pack_models=False,
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            assert client.service.stats.packed_jobs == 0
        for a, b in zip(serial, served):
            _assert_batches_identical(a, b)

    def test_collision_groups_pack_separately_but_serve_correctly(self, deck):
        """Satellite: differing params split micro-batches end to end."""
        group_a = _requests(deck, 2, base_seed=500, params={"flavour": "a"})
        group_b = _requests(deck, 2, base_seed=500, params={"flavour": "b"})
        requests = [group_a[0], group_b[0], group_a[1], group_b[1]]
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            scheduler=SchedulerConfig(gather_window_s=0.05)
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        # Two micro-batches (one per param group), never one packed four:
        # a micro-batch can hold at most one param group's requests.
        assert stats.micro_batches >= 2
        assert stats.peak_coalesced <= 2
        for a, b in zip(serial, served):
            _assert_batches_identical(a, b)


class TestPackedFallback:
    def test_broken_packed_stage_falls_back_bit_identically(self, deck):
        requests = _requests(
            deck, 4, backend="pp-broken-pack", base_seed=600
        )
        serial = [run_generation(request) for request in requests]
        config = ServiceConfig(
            exec_mode="packed",
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        assert stats.packed_fallbacks > 0
        assert stats.packed_jobs == 0
        assert stats.failed == 0
        for a, b in zip(serial, served):
            _assert_batches_identical(a, b)


class TestPackingStats:
    def test_fill_gauge_and_counters(self, deck):
        requests = _requests(deck, 4, base_seed=700)
        config = ServiceConfig(
            exec_mode="packed",
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            client.generate_many(requests)
            stats = client.service.stats
        assert stats.packed_jobs > 0
        assert stats.packed_batches >= 1
        assert 0.0 < stats.last_pack_fill <= 1.0
        assert stats.queue_depth == 0
        if stats.peak_coalesced == 4:
            # All four coalesced: 3-job chunks at capacity 4 -> one
            # packed batch per chunk, each 3/4 full.
            assert stats.packed_jobs == 12
            assert stats.packed_batches == 4
            assert stats.last_pack_fill == pytest.approx(0.75)
