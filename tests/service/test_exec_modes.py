"""Served all-mode determinism sweep and tuner-store warm restarts.

The self-tuning executor's service-level contract: every ``exec_mode``
(forced serial/pooled/packed and the tuner's ``auto``) serves bit-identical
results at any lane count, and a fresh service process over a populated
``--tuner-dir`` exploits its persisted measurements on the very first
micro-batch instead of re-exploring.
"""

import os

import numpy as np
import pytest

from repro.core import PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import basic_deck
from repro.engine import (
    ExecutionTuner,
    GenerationRequest,
    register_backend,
    run_generation,
)
from repro.engine.backends import PatternPaintBackend
from repro.engine.tuner import EXEC_MODES, pow2_bucket
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig
from repro.service import (
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
)

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)

TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=11,
)

_DDPM = Ddpm(TimeUnet(TINY), linear_schedule(20))

_STARTERS = [
    np.random.default_rng(70 + i).integers(0, 2, (16, 16)).astype(np.uint8)
    for i in range(3)
]

_PP_CONFIG = PatternPaintConfig(
    inpaint=InpaintConfig(num_steps=2), model_batch=4
)


def _pp_factory(deck=None, **tuning):
    """Pack-capable backend over an injected tiny model.

    Accepts the lane kwargs (``jobs``/``model_jobs``/``exec_mode``/
    ``tuner``) so served runs exercise the full tuning plumb-through.
    """
    return PatternPaintBackend(
        deck=deck if deck is not None else basic_deck(GRID),
        ddpm=_DDPM,
        config=_PP_CONFIG,
        templates=_STARTERS,
        **tuning,
    )


register_backend("pp-exec-test", _pp_factory, overwrite=True)


@pytest.fixture(scope="module")
def deck():
    return basic_deck(GRID)


def _requests(deck, n, *, count=3, base_seed=0, params=None):
    return [
        GenerationRequest(
            backend="pp-exec-test", count=count, seed=base_seed + i,
            deck=deck, params=params or {},
        )
        for i in range(n)
    ]


def _assert_batches_identical(a, b):
    assert a.attempts == b.attempts
    assert len(a.clips) == len(b.clips)
    for x, y in zip(a.clips, b.clips):
        np.testing.assert_array_equal(x, y)
    np.testing.assert_array_equal(a.legal, b.legal)
    assert a.admitted == b.admitted


class TestServedModeSweep:
    def test_all_modes_bit_identical_with_lanes(self, deck):
        """Tentpole: serve the same mixed burst under every exec mode
        with two worker lanes; every mode must match the serial
        per-request reference bitwise."""
        group_a = _requests(deck, 2, base_seed=20, params={"flavour": "a"})
        group_b = _requests(deck, 2, base_seed=20, params={"flavour": "b"})
        requests = [group_a[0], group_b[0], group_a[1], group_b[1]]
        reference = [run_generation(request) for request in requests]
        for mode in EXEC_MODES:
            config = ServiceConfig(
                lanes=2,
                exec_mode=mode,
                scheduler=SchedulerConfig(gather_window_s=0.05),
            )
            with ServiceClient(config) as client:
                served = client.generate_many(requests)
                stats = client.service.stats
                decisions = dict(stats.tuner_decisions)
            assert sum(decisions.values()) >= 2, (
                f"mode {mode!r}: no per-micro-batch decisions were made"
            )
            for a, b in zip(reference, served):
                _assert_batches_identical(a, b)

    def test_forced_serial_never_packs(self, deck):
        requests = _requests(deck, 4, base_seed=40)
        reference = [run_generation(request) for request in requests]
        config = ServiceConfig(
            exec_mode="serial",
            scheduler=SchedulerConfig(gather_window_s=0.05),
        )
        with ServiceClient(config) as client:
            served = client.generate_many(requests)
            stats = client.service.stats
        assert stats.packed_jobs == 0
        assert stats.tuner_forced > 0
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)


class TestTunerStoreRestart:
    def _signature(self, request, *, total_jobs, n_requests):
        """The exact ``micro`` signature the service computes."""
        return (
            "micro",
            ExecutionTuner.signature_digest(tuple(request.compatibility_key())),
            pow2_bucket(total_jobs),
            pow2_bucket(n_requests),
            os.cpu_count() or 1,
        )

    def test_warm_store_makes_non_default_first_choice(
        self, deck, tmp_path, monkeypatch
    ):
        """A fresh process over a populated --tuner-dir exploits at once.

        The persisted store says per-request ("serial") beats packed for
        this workload, so the restarted service's *first* micro-batch
        must choose serial — the non-default choice (a cold tuner would
        explore packed first) — without any in-process measurement.
        """
        from repro.engine.tuner import EXEC_MODE_ENV

        monkeypatch.delenv(EXEC_MODE_ENV, raising=False)
        requests = _requests(deck, 2, base_seed=60)
        seed_store = ExecutionTuner(store_dir=tmp_path)
        signature = self._signature(
            requests[0],
            total_jobs=sum(r.count for r in requests),
            n_requests=len(requests),
        )
        seed_store.record(signature, "packed", 10.0, jobs=6)
        seed_store.record(signature, "serial", 0.1, jobs=6)
        seed_store.save()

        reference = [run_generation(request) for request in requests]
        config = ServiceConfig(
            tuner_dir=str(tmp_path),
            scheduler=SchedulerConfig(gather_window_s=0.1),
        )
        with ServiceClient(config) as client:
            assert client.service.tuner.loaded == 1
            served = client.generate_many(requests)
            stats = client.service.stats
        # Both requests coalesced into one packable micro-batch whose
        # decision came from the warm store: exploit, serial, no packing.
        assert stats.peak_coalesced == 2, "requests failed to coalesce"
        assert stats.micro_batches == 1
        assert stats.tuner_exploits == 1
        assert stats.tuner_explores == 0
        assert stats.tuner_decisions == {"serial": 1}
        assert stats.packed_jobs == 0
        for a, b in zip(reference, served):
            _assert_batches_identical(a, b)

    def test_stale_store_entries_fall_back_to_exploring(
        self, deck, tmp_path, monkeypatch
    ):
        """A tampered store entry is skipped: the service explores cold."""
        import json

        from repro.engine.tuner import EXEC_MODE_ENV

        monkeypatch.delenv(EXEC_MODE_ENV, raising=False)
        requests = _requests(deck, 2, base_seed=80)
        seed_store = ExecutionTuner(store_dir=tmp_path)
        signature = self._signature(
            requests[0],
            total_jobs=sum(r.count for r in requests),
            n_requests=len(requests),
        )
        seed_store.record(signature, "packed", 10.0, jobs=6)
        seed_store.record(signature, "serial", 0.1, jobs=6)
        path = seed_store.save()
        payload = json.loads(path.read_text())
        for entry in payload["entries"].values():
            entry["signature"][-1] = 999999  # fingerprint mismatch
        path.write_text(json.dumps(payload))

        config = ServiceConfig(
            tuner_dir=str(tmp_path),
            scheduler=SchedulerConfig(gather_window_s=0.1),
        )
        with ServiceClient(config) as client:
            assert client.service.tuner.loaded == 0
            client.generate_many(requests)
            stats = client.service.stats
        assert stats.tuner_exploits == 0
        assert stats.tuner_explores + stats.tuner_forced >= 1

    def test_service_persists_store_on_stop(self, deck, tmp_path):
        requests = _requests(deck, 2, base_seed=90)
        config = ServiceConfig(
            tuner_dir=str(tmp_path),
            scheduler=SchedulerConfig(gather_window_s=0.1),
        )
        with ServiceClient(config) as client:
            client.generate_many(requests)
        path = ExecutionTuner.store_path(tmp_path)
        assert path.exists()
        reloaded = ExecutionTuner(store_dir=tmp_path)
        assert reloaded.loaded >= 1
