"""Session-scoped stores: sharing, snapshot loading, checkpointing."""

import numpy as np
import pytest

from repro.library import ShardedStore, load_library, save_library
from repro.service import SessionConfig, SessionManager


def _clip(seed: int) -> np.ndarray:
    img = np.zeros((8, 8), dtype=np.uint8)
    img[:, seed % 5: seed % 5 + 2 + seed % 3] = 1
    return img


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(library_shards=0)
        with pytest.raises(ValueError):
            SessionConfig(checkpoint_every=-1)


class TestManager:
    def test_same_id_returns_same_session(self):
        manager = SessionManager()
        a = manager.get("tenant-a")
        assert manager.get("tenant-a") is a
        assert a.store is manager.get("tenant-a").store

    def test_distinct_ids_get_distinct_stores(self):
        manager = SessionManager()
        a, b = manager.get("a"), manager.get("b")
        assert a.store is not b.store
        a.store.admit(_clip(1))
        assert len(b.store) == 0

    def test_sharded_store_flavour(self):
        manager = SessionManager(SessionConfig(library_shards=4))
        assert manager.get("t").store.num_shards == 4

    def test_invalid_ids_rejected(self):
        manager = SessionManager()
        for bad in ("", "../escape", ".hidden", "a b", None):
            with pytest.raises(ValueError):
                manager.get(bad)

    def test_snapshot_loaded_on_first_use(self, tmp_path):
        seeded = ShardedStore([_clip(i) for i in range(5)], num_shards=2)
        save_library(seeded, tmp_path / "tenant-a")
        manager = SessionManager(SessionConfig(snapshot_root=tmp_path))
        session = manager.get("tenant-a")
        assert len(session.store) == 5
        assert session.store.num_shards == 2  # snapshot layout kept
        # Re-admitting a snapshot clip is a duplicate: cross-restart dedup.
        assert session.store.admit(_clip(0)) is False

    def test_fresh_session_without_snapshot(self, tmp_path):
        manager = SessionManager(SessionConfig(snapshot_root=tmp_path))
        assert len(manager.get("new-tenant").store) == 0


class TestCheckpointing:
    def test_periodic_checkpoint_every_n_batches(self, tmp_path):
        manager = SessionManager(
            SessionConfig(snapshot_root=tmp_path, checkpoint_every=2)
        )
        session = manager.get("t")
        session.store.admit(_clip(0))
        assert session.record_batch() is None  # batch 1: not yet due
        session.store.admit(_clip(1))
        written = session.record_batch()  # batch 2: due
        assert written == tmp_path / "t"
        assert session.checkpoints == 1
        assert len(load_library(written)) == 2

    def test_no_checkpoint_without_interval(self, tmp_path):
        manager = SessionManager(SessionConfig(snapshot_root=tmp_path))
        session = manager.get("t")
        for _ in range(5):
            assert session.record_batch() is None
        assert session.checkpoints == 0

    def test_checkpoint_all_writes_every_persistent_session(self, tmp_path):
        manager = SessionManager(SessionConfig(snapshot_root=tmp_path))
        for name in ("a", "b"):
            manager.get(name).store.admit(_clip(hash(name) % 7))
        written = manager.checkpoint_all()
        assert sorted(p.name for p in written) == ["a", "b"]
        assert all((p / "library.json").exists() for p in written)

    def test_checkpoint_all_survives_one_bad_session(self, tmp_path):
        manager = SessionManager(SessionConfig(snapshot_root=tmp_path))
        bad, good = manager.get("bad"), manager.get("good")
        bad.store.admit(_clip(0))
        good.store.admit(_clip(1))
        (tmp_path / "bad").write_text("not a directory")  # poison one target
        written = manager.checkpoint_all()
        assert [p.name for p in written] == ["good"]
        assert bad.last_checkpoint_error is not None

    def test_checkpoint_without_dir_raises(self):
        session = SessionManager().get("t")
        with pytest.raises(ValueError, match="snapshot directory"):
            session.checkpoint()

    def test_checkpoint_failure_is_recorded_not_raised(self, tmp_path):
        manager = SessionManager(
            SessionConfig(snapshot_root=tmp_path, checkpoint_every=1)
        )
        session = manager.get("t")
        # Poison the target: an existing *file* where the dir should go.
        (tmp_path / "t").write_text("not a directory")
        session.store.admit(_clip(0))
        assert session.record_batch() is None
        assert session.last_checkpoint_error is not None
        assert len(session.store) == 1  # store itself intact
