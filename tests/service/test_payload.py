"""Round-trip property tests for the clip payload codec.

The wire contract: encode → page → reassemble → decode is the identity
on any list of (non-object-dtype) numpy arrays, for both encodings, for
any page size — including the empty-batch and single-clip edges.  The
fuzz/conformance suites build on this module being airtight.
"""

import json

import numpy as np
import pytest

from repro.service.payload import (
    AssembledPayload,
    PayloadAssembler,
    PayloadError,
    decode_payload,
    encode_payload,
    page_data_chars,
    payload_frames,
    split_pages,
)

DTYPES = [
    np.uint8, np.int16, np.int32, np.int64,
    np.float32, np.float64, np.bool_, np.complex64,
]


def random_arrays(rng: np.random.Generator, count: int) -> list:
    """A batch of arrays with random dtypes, ranks and extents."""
    arrays = []
    for _ in range(count):
        dtype = DTYPES[int(rng.integers(len(DTYPES)))]
        rank = int(rng.integers(0, 4))
        shape = tuple(int(rng.integers(0, 7)) for _ in range(rank))
        raw = rng.integers(-100, 100, size=shape)
        arrays.append(raw.astype(dtype))
    return arrays


def assert_identical(left: list, right: list) -> None:
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b)


class TestEncodeDecode:
    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_round_trip_random_batches(self, encoding):
        rng = np.random.default_rng(2025)
        for trial in range(25):
            arrays = random_arrays(rng, int(rng.integers(0, 9)))
            meta, data = encode_payload(arrays, encoding)
            assert meta["count"] == len(arrays)
            assert_identical(decode_payload(meta, data), arrays)

    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_empty_batch(self, encoding):
        meta, data = encode_payload([], encoding)
        assert meta["count"] == 0
        assert decode_payload(meta, data) == []

    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_single_clip(self, encoding):
        clip = np.arange(256, dtype=np.uint8).reshape(16, 16)
        meta, data = encode_payload([clip], encoding)
        assert_identical(decode_payload(meta, data), [clip])

    def test_meta_is_json_serializable(self):
        meta, _ = encode_payload(
            [np.zeros((3, 4), dtype=np.float32)], "b64"
        )
        json.dumps(meta)  # dtype strings and int shapes, nothing numpy

    def test_non_contiguous_and_views_round_trip(self):
        base = np.arange(64, dtype=np.int32).reshape(8, 8)
        arrays = [base[::2, ::2], base.T, base[1:5, 2:7]]
        meta, data = encode_payload(arrays, "b64")
        assert_identical(decode_payload(meta, data), arrays)

    def test_npz_is_deterministic(self):
        clip = np.arange(300, dtype=np.int16) % 7
        first = encode_payload([clip, clip * 2], "npz")
        second = encode_payload([clip.copy(), (clip * 2).copy()], "npz")
        assert first == second

    def test_object_dtype_refused(self):
        with pytest.raises(PayloadError):
            encode_payload([np.array([object()])], "b64")

    def test_unknown_encoding_refused(self):
        with pytest.raises(PayloadError):
            encode_payload([np.zeros(3)], "zip")

    def test_checksum_mismatch_detected(self):
        meta, data = encode_payload([np.arange(10, dtype=np.uint8)], "b64")
        meta = {**meta, "sha256": "0" * 64}
        with pytest.raises(PayloadError):
            decode_payload(meta, data)

    def test_truncated_data_detected(self):
        meta, data = encode_payload(
            [np.arange(100, dtype=np.float64)], "b64"
        )
        with pytest.raises(PayloadError):
            decode_payload(meta, data[: len(data) // 2])


class TestPaging:
    def test_split_pages_reassembles_exactly(self):
        rng = np.random.default_rng(7)
        for _ in range(40):
            length = int(rng.integers(0, 2000))
            data = "".join(
                chr(int(c)) for c in rng.integers(65, 91, size=length)
            )
            page_chars = int(rng.integers(1, 700))
            pages = split_pages(data, page_chars)
            assert pages  # never zero pages, even for empty data
            assert all(len(p) <= page_chars for p in pages)
            assert "".join(pages) == data

    def test_page_size_honours_line_limit(self):
        assert page_data_chars(4096) < 4096
        assert page_data_chars(10) >= 256  # floor: tiny limits still progress

    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_frames_round_trip_random_page_sizes(self, encoding):
        rng = np.random.default_rng(11)
        for trial in range(20):
            arrays = random_arrays(rng, int(rng.integers(0, 6)))
            meta, data = encode_payload(arrays, encoding)
            page_chars = int(rng.integers(1, 500))
            field, frames = payload_frames(
                "req-x", "result", meta, data,
                limit=4096, page_chars=page_chars,
            )
            assert field["pages"] == len(frames) - 1
            assert frames[-1]["event"] == "payload_done"
            assembler = PayloadAssembler()
            assembler.feed(
                {"event": "result", "request_id": "req-x", "payload": field}
            )
            done = None
            for frame in frames:
                out = assembler.feed(frame)
                assert out is None or frame is frames[-1]
                done = out or done
            assert isinstance(done, AssembledPayload)
            assert done.kind == "result"
            assert_identical(done.arrays, arrays)

    def test_chunk_frames_carry_index(self):
        meta, data = encode_payload([np.zeros(4, dtype=np.uint8)], "b64")
        field, frames = payload_frames(
            "rid", "chunk", meta, data, limit=4096, chunk=3
        )
        assert all(f["chunk"] == 3 and f["for"] == "chunk" for f in frames)
        assembler = PayloadAssembler()
        assembler.feed({
            "event": "chunk", "request_id": "rid", "chunk": 3,
            "proposed": 1, "payload": field,
        })
        done = None
        for frame in frames:
            done = assembler.feed(frame) or done
        assert done is not None and done.chunk == 3

    def test_every_frame_fits_the_line_limit(self):
        clips = [
            np.random.default_rng(s).integers(0, 2, (32, 32), dtype=np.uint8)
            for s in range(16)
        ]
        limit = 2048
        meta, data = encode_payload(clips, "b64")
        field, frames = payload_frames("rid", "result", meta, data, limit=limit)
        assert field["pages"] >= 3  # big enough batch to actually page
        for frame in frames:
            line = json.dumps(frame).encode() + b"\n"
            assert len(line) <= limit

    def test_interleaved_payloads_demultiplex(self):
        """Pages of different requests/chunks may interleave on the wire."""
        a = [np.full((2, 2), 1, dtype=np.uint8)]
        b = [np.full((3, 3), 2, dtype=np.int32)]
        meta_a, data_a = encode_payload(a, "b64")
        meta_b, data_b = encode_payload(b, "npz")
        field_a, frames_a = payload_frames(
            "ra", "result", meta_a, data_a, limit=4096, page_chars=4
        )
        field_b, frames_b = payload_frames(
            "rb", "chunk", meta_b, data_b, limit=4096, page_chars=4, chunk=0
        )
        assembler = PayloadAssembler()
        assembler.feed({"event": "result", "request_id": "ra", "payload": field_a})
        assembler.feed({
            "event": "chunk", "request_id": "rb", "chunk": 0,
            "proposed": 1, "payload": field_b,
        })
        interleaved = [
            frame
            for pair in zip(frames_a, frames_b)
            for frame in pair
        ] + frames_a[len(frames_b):] + frames_b[len(frames_a):]
        done = [out for f in interleaved if (out := assembler.feed(f))]
        assert {d.request_id for d in done} == {"ra", "rb"}
        by_id = {d.request_id: d for d in done}
        assert_identical(by_id["ra"].arrays, a)
        assert_identical(by_id["rb"].arrays, b)


class TestAssemblerErrors:
    def _framed(self, page_chars=8):
        meta, data = encode_payload([np.arange(60, dtype=np.uint8)], "b64")
        return payload_frames(
            "rid", "result", meta, data, limit=4096, page_chars=page_chars
        )

    def test_unannounced_page_rejected(self):
        _, frames = self._framed()
        with pytest.raises(PayloadError):
            PayloadAssembler().feed(frames[0])

    def test_out_of_order_page_rejected(self):
        field, frames = self._framed()
        assembler = PayloadAssembler()
        assembler.feed({"event": "result", "request_id": "rid", "payload": field})
        assert len(frames) > 3
        assembler.feed(frames[0])
        with pytest.raises(PayloadError):
            assembler.feed(frames[2])  # skipped seq 1

    def test_missing_page_rejected_at_done(self):
        field, frames = self._framed()
        assembler = PayloadAssembler()
        assembler.feed({"event": "result", "request_id": "rid", "payload": field})
        for frame in frames[:-2]:  # drop the final data page
            assembler.feed(frame)
        with pytest.raises(PayloadError):
            assembler.feed(frames[-1])

    def test_non_payload_events_pass_through(self):
        assembler = PayloadAssembler()
        assert assembler.feed({"event": "pong"}) is None
        assert assembler.feed({"event": "accepted", "request_id": "x"}) is None
        assert assembler.feed(
            {"event": "chunk", "request_id": "x", "proposed": 4}
        ) is None  # payload-off chunk events carry no payload dict
