"""End-to-end tests for the HTTP gateway.

The acceptance bar for the delivery path: a client with nothing but an
HTTP connection — no python API, no filesystem access — retrieves clips
bit-identical to a serial ``run_generation`` of the same request, for
both payload encodings, including when the events stream is forced to
page.  All HTTP calls here go through ``http.client`` on a worker
thread (the gateway runs on this test's event loop, so blocking I/O on
the loop thread would deadlock).
"""

import asyncio
import http.client
import json

import numpy as np
import pytest

from repro.drc.decks import deck_by_name
from repro.engine import GenerationRequest, run_generation
from repro.service import (
    FleetConfig,
    FleetService,
    GenerationService,
    PayloadAssembler,
    ServiceConfig,
    decode_payload,
    serve_http,
)
from repro.zoo.corpora import EXPERIMENT_GRID


def _request(port, method, path, body=None, timeout=60):
    """One blocking HTTP round-trip: ``(status, parsed-JSON body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw)
    finally:
        conn.close()


def _stream_events(port, path, timeout=120):
    """Consume the chunked ndjson events route into a list of frames."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        body = response.read()  # http.client undoes the chunked framing
        return [json.loads(line) for line in body.splitlines() if line]
    finally:
        conn.close()


async def _poll_done(port, poll_path, timeout=60):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, body = await asyncio.to_thread(_request, port, "GET", poll_path)
        assert status == 200
        if body["status"] != "pending":
            return body
        assert asyncio.get_running_loop().time() < deadline, "poll timed out"
        await asyncio.sleep(0.05)


class _GatewayHarness:
    """A started service + gateway on an ephemeral port."""

    def __init__(self, service):
        self.service = service
        self.gateway = None
        self.port = None

    async def __aenter__(self):
        await self.service.start()
        self.gateway = await serve_http(self.service, "127.0.0.1", 0)
        self.port = self.gateway.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        await self.gateway.close()
        await self.service.stop()


def _serial(count=8, seed=5):
    deck = deck_by_name("basic", EXPERIMENT_GRID)
    return run_generation(
        GenerationRequest(backend="rule", count=count, seed=seed, deck=deck)
    )


def _assert_clips_identical(arrays, serial):
    assert len(arrays) == len(serial.clips)
    for got, want in zip(arrays, serial.clips):
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


class TestPollDelivery:
    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_poll_returns_bit_identical_clips(self, encoding):
        serial = _serial()

        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                status, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 8, "seed": 5,
                     "deck": "basic", "payload": encoding},
                )
                assert status == 202
                assert accepted["status"] == "accepted"
                assert accepted["payload"] == encoding
                return await _poll_done(h.port, accepted["poll"])

        body = asyncio.run(run())
        assert body["status"] == "done"
        assert body["attempts"] == 8
        assert body["legal_mask"] == [int(v) for v in serial.legal]
        payload = body["payload"]
        arrays = decode_payload(payload, payload["data"])
        _assert_clips_identical(arrays, serial)

    def test_payload_none_poll_has_accounting_only(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                _, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 4, "seed": 1,
                     "deck": "basic"},
                )
                return await _poll_done(h.port, accepted["poll"])

        body = asyncio.run(run())
        assert body["status"] == "done"
        assert "payload" not in body
        assert "legal_mask" not in body

    def test_client_supplied_request_id_is_honoured(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                _, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 2, "seed": 1,
                     "deck": "basic", "request_id": "my-req-01"},
                )
                assert accepted["request_id"] == "my-req-01"
                return await _poll_done(h.port, "/v1/requests/my-req-01")

        assert asyncio.run(run())["status"] == "done"


class TestEventsStream:
    def test_paged_event_stream_reassembles_bit_identical(self):
        """Forced paging (small line limit) over the chunked stream."""
        serial = _serial()

        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            gateway = await serve_http(service, "127.0.0.1", 0, limit=1024)
            port = gateway.server.sockets[0].getsockname()[1]
            try:
                _, accepted = await asyncio.to_thread(
                    _request, port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 8, "seed": 5,
                     "deck": "basic", "payload": "b64"},
                )
                return await asyncio.to_thread(
                    _stream_events, port, accepted["events"]
                )
            finally:
                await gateway.close()
                await service.stop()

        frames = asyncio.run(run())
        result = next(f for f in frames if f["event"] == "result")
        assert result["payload"]["pages"] >= 3
        pages = [
            f for f in frames
            if f["event"] == "payload_page" and f["for"] == "result"
        ]
        assert len(pages) == result["payload"]["pages"]
        assembler = PayloadAssembler()
        done = [out for f in frames if (out := assembler.feed(f))]
        final = next(d for d in done if d.kind == "result")
        _assert_clips_identical(final.arrays, serial)

    def test_events_for_unknown_request_is_404(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                return await asyncio.to_thread(
                    _request, h.port, "GET", "/v1/requests/nope/events"
                )

        status, body = asyncio.run(run())
        assert status == 404
        assert "error" in body


class TestControlPlane:
    def test_stats_and_healthz(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                stats = await asyncio.to_thread(
                    _request, h.port, "GET", "/v1/stats"
                )
                health = await asyncio.to_thread(
                    _request, h.port, "GET", "/v1/healthz"
                )
                return stats, health

        (stats_status, stats), (health_status, health) = asyncio.run(run())
        assert stats_status == 200
        assert "submitted" in stats
        assert health_status == 200
        assert health["status"] in ("ok", "draining")

    def test_healthz_503_after_stop(self):
        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            gateway = await serve_http(service, "127.0.0.1", 0)
            port = gateway.server.sockets[0].getsockname()[1]
            try:
                await service.stop()
                return await asyncio.to_thread(
                    _request, port, "GET", "/v1/healthz"
                )
            finally:
                await gateway.close()

        status, body = asyncio.run(run())
        assert status == 503
        assert body["status"] == "stopped"

    def test_cancel_endpoint(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                _, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 4, "seed": 1,
                     "deck": "basic"},
                )
                rid = accepted["request_id"]
                cancel = await asyncio.to_thread(
                    _request, h.port, "POST", f"/v1/requests/{rid}/cancel"
                )
                body = await _poll_done(h.port, accepted["poll"])
                unknown = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/requests/nope/cancel"
                )
                return cancel, body, unknown

        (cancel_status, cancel), body, (unknown_status, _) = asyncio.run(run())
        assert cancel_status == 200
        # The request may already have finished — either way the poll
        # resolves to a terminal status and the verb answered cleanly.
        assert isinstance(cancel["cancelled"], bool)
        assert body["status"] in ("done", "cancelled")
        assert unknown_status == 404


class TestErrorContract:
    CASES = [
        ("GET", "/nope", None, 404),
        ("GET", "/v1/generate", None, 405),
        ("POST", "/v1/stats", None, 405),
        ("POST", "/v1/requests/abc", None, 405),
        ("GET", "/v1/requests/unknown", None, 404),
        ("POST", "/v1/generate", {"count": 4}, 400),
        ("POST", "/v1/generate", {"backend": "rule"}, 400),
        ("POST", "/v1/generate", {"backend": "nope", "count": 4}, 400),
        ("POST", "/v1/generate",
         {"backend": "rule", "count": 4, "payload": "zip"}, 400),
        ("POST", "/v1/generate",
         {"backend": "rule", "count": 4, "request_id": "bad id!"}, 400),
    ]

    def test_structured_errors(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                out = []
                for method, path, body, expected in self.CASES:
                    status, parsed = await asyncio.to_thread(
                        _request, h.port, method, path, body
                    )
                    out.append((method, path, status, parsed, expected))
                # The gateway survives all of it: a valid request after.
                status, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 2, "seed": 1,
                     "deck": "basic"},
                )
                final = await _poll_done(h.port, accepted["poll"])
                return out, status, final

        out, status, final = asyncio.run(run())
        for method, path, got, parsed, expected in out:
            assert got == expected, (method, path, got, parsed)
            assert "error" in parsed
        assert status == 202
        assert final["status"] == "done"

    def test_bad_json_body_and_non_object(self):
        async def run():
            async with _GatewayHarness(
                GenerationService(ServiceConfig())
            ) as h:
                def raw_post(body_bytes):
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", h.port, timeout=30
                    )
                    try:
                        conn.request("POST", "/v1/generate", body=body_bytes)
                        response = conn.getresponse()
                        return response.status, json.loads(response.read())
                    finally:
                        conn.close()

                return [
                    await asyncio.to_thread(raw_post, b'{"backend": "ru'),
                    await asyncio.to_thread(raw_post, b"[1, 2, 3]"),
                    await asyncio.to_thread(raw_post, b"\xff\xfe\x00"),
                ]

        for status, body in asyncio.run(run()):
            assert status == 400
            assert "error" in body

    def test_oversized_body_is_413(self):
        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            gateway = await serve_http(
                service, "127.0.0.1", 0, max_body=1024
            )
            port = gateway.server.sockets[0].getsockname()[1]
            try:
                return await asyncio.to_thread(
                    _request, port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 4, "params": {
                        "pad": "x" * 4096
                    }},
                )
            finally:
                await gateway.close()
                await service.stop()

        status, body = asyncio.run(run())
        assert status == 413
        assert "error" in body


class TestFleetBackedGateway:
    def test_npz_round_trip_against_two_worker_fleet(self):
        """The CI gateway-smoke scenario: HTTP + fleet + npz payloads."""
        serial = _serial(count=6, seed=7)

        async def run():
            async with _GatewayHarness(
                FleetService(FleetConfig(
                    workers=2, service=ServiceConfig(),
                ))
            ) as h:
                status, accepted = await asyncio.to_thread(
                    _request, h.port, "POST", "/v1/generate",
                    {"backend": "rule", "count": 6, "seed": 7,
                     "deck": "basic", "payload": "npz"},
                )
                assert status == 202
                body = await _poll_done(h.port, accepted["poll"])
                _, stats = await asyncio.to_thread(
                    _request, h.port, "GET", "/v1/stats"
                )
                return body, stats

        body, stats = asyncio.run(run())
        assert body["status"] == "done"
        payload = body["payload"]
        assert payload["encoding"] == "npz"
        arrays = decode_payload(payload, payload["data"])
        _assert_clips_identical(arrays, serial)
        assert body["legal_mask"] == [int(v) for v in serial.legal]
        assert len(stats["fleet"]["workers"]) == 2
