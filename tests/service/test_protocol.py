"""Golden wire-protocol conformance suite + delivery regressions.

The TCP line-JSON protocol is consumed by clients the repo never sees,
so drift must break CI, not them.  ``fixtures/protocol_frames.json``
records, for every verb (generate / cancel / ping / stats / health,
error frames, and the clip-payload continuation frames), the exact
bytes the server answered with at recording time; the suite replays
each session against a live server and asserts the frames byte-for-byte
— after substituting declared *volatile* fields (wall-clock ``seconds``)
with the recorded values, so timing noise cannot mask a format change.
Canonical formatting is pinned separately: every emitted line must equal
``json.dumps(json.loads(line))``.

Regenerate after an intentional protocol change with::

    PYTHONPATH=src python tests/service/test_protocol.py --record

The file also carries the delivery regressions that ride the protocol:
``RemoteClient`` bit-identity (b64 + npz, paging forced to several
pages), the disconnect-mid-payload-paging exactly-once cancellation
(single-process and fleet), and the ``ClientTicket.result(timeout=)``
contract.
"""

import asyncio
import json
import socket
import struct
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import GenerationRequest, run_generation
from repro.engine.executor import BatchExecutor
from repro.service import (
    FleetConfig,
    FleetService,
    GenerationService,
    RemoteClient,
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
    serve,
)

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "protocol_frames.json"

#: Fields whose values depend on wall clock, never on the protocol.
VOLATILE = {"result": ["seconds"]}

#: Paging is part of the golden surface: a limit small enough that the
#: recorded generate-with-payload session pages its clips.
GOLDEN_LIMIT = 2048

#: The recorded sessions.  Each is replayed on a fresh service against
#: a fresh connection, all lines pipelined then EOF, frames read until
#: the server closes — so ordering is deterministic (one generate per
#: session at most, as the last line).
SESSIONS = [
    {"name": "ping", "send": ['{"op": "ping"}']},
    {"name": "cancel-unknown", "send": ['{"op": "cancel", "request_id": "nope"}']},
    {"name": "error-bad-json", "send": ['{"backend": "rule", "count']},
    {"name": "error-non-object", "send": ['[1, 2, 3]']},
    {"name": "error-op-not-string", "send": ['{"op": 7}']},
    {"name": "error-unknown-op", "send": ['{"op": "reboot"}']},
    {"name": "error-missing-backend", "send": ['{"count": 4}']},
    {"name": "error-missing-count", "send": ['{"backend": "rule"}']},
    {
        # The message lists the registered backends, and other test
        # modules register extras — the text is volatile, the shape not.
        "name": "error-unknown-backend",
        "send": ['{"backend": "nope", "count": 4}'],
        "volatile": {"error": ["message"]},
    },
    {"name": "error-bad-count", "send": ['{"backend": "rule", "count": -2}']},
    {
        "name": "error-bad-payload-mode",
        "send": ['{"backend": "rule", "count": 4, "payload": "zip"}'],
    },
    {
        "name": "error-bad-payload-type",
        "send": ['{"backend": "rule", "count": 4, "payload": 7}'],
    },
    {
        "name": "error-bad-request-id",
        "send": ['{"backend": "rule", "count": 4, "request_id": "a b!"}'],
    },
    {
        "name": "error-bad-deadline",
        "send": ['{"backend": "rule", "count": 4, "deadline_s": -1}'],
    },
    {
        "name": "error-cancel-without-id",
        "send": ['{"op": "cancel"}'],
    },
    {
        "name": "generate-accounting",
        "send": [
            '{"backend": "rule", "count": 4, "seed": 3, "deck": "basic", '
            '"request_id": "golden-acct"}'
        ],
    },
    {
        "name": "generate-payload-b64-paged",
        "send": [
            '{"backend": "rule", "count": 6, "seed": 3, "deck": "basic", '
            '"payload": "b64", "request_id": "golden-b64"}'
        ],
    },
]


def canonical(obj) -> str:
    """The server's JSON form: ``json.dumps`` defaults, insertion order."""
    return json.dumps(obj)


async def _session(lines, *, limit=GOLDEN_LIMIT):
    """Run one recorded session: fresh service, pipelined lines, EOF."""
    service = GenerationService(ServiceConfig())
    await service.start()
    server = await serve(
        service, "127.0.0.1", 0, default_deck="advanced", limit=limit
    )
    port = server.sockets[0].getsockname()[1]
    raw_frames = []
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for line in lines:
            writer.write(line.encode() + b"\n")
        await writer.drain()
        writer.write_eof()
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=60)
            if not raw:
                break
            raw_frames.append(raw.decode().rstrip("\n"))
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()
    return raw_frames


def _record() -> dict:
    fixture = {"limit": GOLDEN_LIMIT, "sessions": []}
    for spec in SESSIONS:
        frames = asyncio.run(_session(spec["send"]))
        volatile = {**VOLATILE, **spec.get("volatile", {})}
        fixture["sessions"].append({
            "name": spec["name"],
            "send": spec["send"],
            "frames": [
                {
                    "raw": raw,
                    "volatile": volatile.get(
                        json.loads(raw).get("event"), []
                    ),
                }
                for raw in frames
            ],
        })
    stats_frames = asyncio.run(_session(['{"op": "stats"}']))
    health_frames = asyncio.run(_session(['{"op": "health"}']))
    fixture["stats_keys"] = sorted(json.loads(stats_frames[0]).keys())
    fixture["health_keys"] = sorted(json.loads(health_frames[0]).keys())
    return fixture


def _load_fixture() -> dict:
    assert FIXTURE_PATH.exists(), (
        "protocol fixture missing; regenerate with "
        "PYTHONPATH=src python tests/service/test_protocol.py --record"
    )
    return json.loads(FIXTURE_PATH.read_text())


_FIXTURE = _load_fixture() if FIXTURE_PATH.exists() else None


class TestGoldenFrames:
    """Byte-for-byte replay of every recorded session."""

    @pytest.mark.parametrize(
        "recorded",
        (_FIXTURE or {}).get("sessions", []),
        ids=lambda s: s["name"],
    )
    def test_session_matches_recording(self, recorded):
        actual = asyncio.run(
            _session(recorded["send"], limit=_FIXTURE["limit"])
        )
        expected = recorded["frames"]
        names = [json.loads(raw).get("event") for raw in actual]
        assert len(actual) == len(expected), (
            f"frame count drifted: {names}"
        )
        for raw, exp in zip(actual, expected):
            # 1. The server emits canonical json.dumps formatting.
            obj = json.loads(raw)
            assert raw == canonical(obj), "non-canonical frame formatting"
            # 2. Byte-for-byte against the recording, volatile fields
            #    substituted with the recorded values first.
            exp_obj = json.loads(exp["raw"])
            for key in exp["volatile"]:
                assert key in obj, f"volatile field {key!r} disappeared"
                assert type(obj[key]) is type(exp_obj[key])
                obj[key] = exp_obj[key]
            assert canonical(obj) == exp["raw"]

    def test_recorded_sessions_cover_the_verb_surface(self):
        recorded = {s["name"] for s in _FIXTURE["sessions"]}
        assert recorded == {s["name"] for s in SESSIONS}
        all_events = {
            json.loads(f["raw"])["event"]
            for s in _FIXTURE["sessions"]
            for f in s["frames"]
        }
        # Every wire event kind the server can emit (stats/health are
        # pinned by key-set below; their values are live counters).
        assert {
            "pong", "cancelled", "error", "accepted", "chunk",
            "result", "payload_page", "payload_done",
        } <= all_events

    def test_paged_payload_recorded_with_multiple_pages(self):
        session = next(
            s for s in _FIXTURE["sessions"]
            if s["name"] == "generate-payload-b64-paged"
        )
        pages = [
            f for f in session["frames"]
            if json.loads(f["raw"])["event"] == "payload_page"
        ]
        assert len(pages) >= 3

    def test_stats_and_health_key_sets(self):
        stats = asyncio.run(_session(['{"op": "stats"}']))
        health = asyncio.run(_session(['{"op": "health"}']))
        assert sorted(json.loads(stats[0]).keys()) == _FIXTURE["stats_keys"]
        assert (
            sorted(json.loads(health[0]).keys()) == _FIXTURE["health_keys"]
        )


class TestRemoteClientDelivery:
    """A remote TCP client gets clips bit-identical to serial runs."""

    @pytest.mark.parametrize("encoding", ["b64", "npz"])
    def test_decoded_clips_match_run_generation(self, encoding):
        from repro.drc.decks import deck_by_name
        from repro.zoo.corpora import EXPERIMENT_GRID

        deck = deck_by_name("basic", EXPERIMENT_GRID)
        serial = run_generation(
            GenerationRequest(backend="rule", count=8, seed=5, deck=deck)
        )

        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            # A line limit small enough that the clip payload must page.
            server = await serve(service, "127.0.0.1", 0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            try:
                def client_part():
                    with RemoteClient(port=port) as client:
                        client.ping()
                        return client.generate({
                            "backend": "rule", "count": 8, "seed": 5,
                            "deck": "basic", "payload": encoding,
                        })
                return await asyncio.to_thread(client_part)
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        result = asyncio.run(run())
        assert result["payload"]["pages"] >= 3
        assert result["legal_mask"] == [int(v) for v in serial.legal]
        assert len(result["clips"]) == len(serial.clips)
        for got, want in zip(result["clips"], serial.clips):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)
        # Chunk payloads decode too (one chunk for count <= stream_chunk).
        assert result.get("chunk_arrays")

    def test_pipelined_payload_requests_demultiplex(self):
        async def run():
            service = GenerationService(ServiceConfig())
            await service.start()
            server = await serve(service, "127.0.0.1", 0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            try:
                def client_part():
                    with RemoteClient(port=port) as client:
                        return client.generate_many([
                            {"backend": "rule", "count": 4, "seed": s,
                             "deck": "basic", "payload": "b64"}
                            for s in range(3)
                        ])
                return await asyncio.to_thread(client_part)
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        results = asyncio.run(run())
        assert len(results) == 3
        from repro.drc.decks import deck_by_name
        from repro.zoo.corpora import EXPERIMENT_GRID

        deck = deck_by_name("basic", EXPERIMENT_GRID)
        for s, result in enumerate(results):
            serial = run_generation(
                GenerationRequest(backend="rule", count=4, seed=s, deck=deck)
            )
            for got, want in zip(result["clips"], serial.clips):
                assert np.array_equal(got, want)


def _slow_drc(monkeypatch, seconds=0.8):
    """Make the DRC stage slow so a client can vanish mid-paging."""
    original = BatchExecutor.check_batch

    def slow(self, clips):
        time.sleep(seconds)
        return original(self, clips)

    monkeypatch.setattr(BatchExecutor, "check_batch", slow)


async def _vanish_mid_paging(service, *, limit=1024):
    """Submit a payload request, read until mid-paging, then RST."""
    server = await serve(
        service, "127.0.0.1", 0, default_deck="basic", limit=limit
    )
    port = server.sockets[0].getsockname()[1]
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            b'{"backend": "rule", "count": 8, "seed": 3, "payload": "b64"}\n'
        )
        await writer.drain()
        saw_page = False
        while not saw_page:
            frame = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=60)
            )
            # Chunk payload pages stream while DRC is still running, so
            # the request is mid-flight when we vanish.
            saw_page = frame.get("event") == "payload_page"
        sock = writer.transport.get_extra_info("socket")
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        writer.close()
        # The request must resolve as cancelled — exactly once — and the
        # commit stage must stay live for later requests.
        for _ in range(600):
            if service.stats_payload().get("cancelled", 0) or (
                getattr(getattr(service, "stats", None), "cancelled", 0)
            ):
                break
            await asyncio.sleep(0.02)
    finally:
        server.close()
        await server.wait_closed()
    return port


class TestDisconnectMidPaging:
    def test_single_process_cancels_exactly_once(self, monkeypatch):
        _slow_drc(monkeypatch)

        async def run():
            service = GenerationService(ServiceConfig(
                scheduler=SchedulerConfig(gather_window_s=0.05),
            ))
            await service.start()
            try:
                await _vanish_mid_paging(service)
                cancelled = service.stats.cancelled
                failed = service.stats.failed
                completed = service.stats.completed
                # The commit stage survived: a follow-up request on the
                # same service completes normally.
                stream = await service.submit(
                    GenerationRequest(backend="rule", count=2, seed=9)
                )
                batch = await asyncio.wait_for(stream.result(), timeout=60)
                return cancelled, failed, completed, batch.attempts, (
                    service.stats.cancelled
                )
            finally:
                await service.stop()

        cancelled, failed, completed, attempts, cancelled_after = (
            asyncio.run(run())
        )
        assert cancelled == 1          # exactly once, not once per sweep
        assert failed == 1
        assert completed == 0
        assert attempts == 2
        assert cancelled_after == 1    # the follow-up did not re-count

    def test_fleet_cancels_exactly_once(self, monkeypatch):
        # The fork start method inherits the patched (slow) DRC stage.
        _slow_drc(monkeypatch)

        async def run():
            fleet = FleetService(FleetConfig(
                workers=2, service=ServiceConfig(
                    scheduler=SchedulerConfig(gather_window_s=0.05),
                ),
            ))
            await fleet.start()
            try:
                await _vanish_mid_paging(fleet)
                for _ in range(600):
                    if fleet.stats.cancelled:
                        break
                    await asyncio.sleep(0.02)
                cancelled = fleet.stats.cancelled
                # Through the commit sequencer: the cancelled arrival's
                # slot released, so a later arrival still publishes.
                stream = await fleet.submit(
                    GenerationRequest(backend="rule", count=2, seed=9)
                )
                batch = await asyncio.wait_for(stream.result(), timeout=60)
                return cancelled, batch.attempts, fleet.stats.cancelled
            finally:
                await fleet.stop()

        cancelled, attempts, cancelled_after = asyncio.run(run())
        assert cancelled == 1
        assert attempts == 2
        assert cancelled_after == 1


class TestClientTicketTimeout:
    """``result(timeout=)``: the documented contract, regression-tested.

    The docstring promises: on timeout the wait is abandoned *and* a
    service-side cancellation is requested (landing at the next stage
    boundary) — but a request already past its last boundary still
    commits.  Both halves are asserted here so docs and behavior cannot
    drift apart silently.
    """

    def test_timeout_requests_service_side_cancel(self, monkeypatch):
        _slow_drc(monkeypatch, seconds=1.0)
        with ServiceClient(ServiceConfig()) as client:
            ticket = client.submit(
                GenerationRequest(backend="rule", count=4, seed=1)
            )
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.2)
            # The cancel mark lands at the DRC->commit boundary.
            from repro.service import RequestCancelled

            with pytest.raises(RequestCancelled):
                ticket.result(timeout=30)
            assert client.service.stats.cancelled == 1

    def test_completed_request_still_returns_after_late_timeout(self):
        with ServiceClient(ServiceConfig()) as client:
            ticket = client.submit(
                GenerationRequest(backend="rule", count=2, seed=1)
            )
            batch = ticket.result(timeout=60)
            assert batch.attempts == 2
            # A second wait on a resolved ticket returns immediately and
            # never raises the shim TimeoutError.
            assert ticket.result(timeout=0.001).attempts == 2


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE_PATH.write_text(json.dumps(_record(), indent=1) + "\n")
        print(f"recorded {FIXTURE_PATH}")
    else:
        print("usage: python tests/service/test_protocol.py --record")
