"""Unit tests for the pixel grid / physical units."""

import pytest

from repro.geometry import DEFAULT_GRID, Grid


class TestGridConstruction:
    def test_default_grid_is_64px_8nm(self):
        assert DEFAULT_GRID.shape == (64, 64)
        assert DEFAULT_GRID.nm_per_px == 8.0

    def test_rejects_nonpositive_pitch(self):
        with pytest.raises(ValueError, match="nm_per_px"):
            Grid(nm_per_px=0.0)
        with pytest.raises(ValueError, match="nm_per_px"):
            Grid(nm_per_px=-1.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError, match="dimensions"):
            Grid(width_px=0)
        with pytest.raises(ValueError, match="dimensions"):
            Grid(height_px=-4)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_GRID.nm_per_px = 1.0


class TestConversions:
    def test_px_nm_roundtrip(self):
        grid = Grid(nm_per_px=8.0)
        assert grid.to_nm(4) == 32.0
        assert grid.to_px(32.0) == 4.0
        assert grid.to_px(grid.to_nm(13)) == 13.0

    def test_snap_rounds_to_nearest(self):
        grid = Grid(nm_per_px=8.0)
        assert grid.snap_px(33.0) == 4
        assert grid.snap_px(27.9) == 3
        assert grid.snap_px(36.0) == 4  # banker's rounding on .5 * 8

    def test_area_conversion(self):
        grid = Grid(nm_per_px=2.0)
        assert grid.area_nm2(3) == 12.0

    def test_clip_physical_extent(self):
        grid = Grid(nm_per_px=8.0, width_px=64, height_px=32)
        assert grid.clip_width_nm == 512.0
        assert grid.clip_height_nm == 256.0


class TestWithShape:
    def test_with_shape_changes_dimensions_only(self):
        grid = Grid(nm_per_px=4.0, width_px=64, height_px=64)
        resized = grid.with_shape(32, 16)
        assert resized.shape == (32, 16)
        assert resized.nm_per_px == 4.0
        assert grid.shape == (64, 64)  # original untouched
