"""Unit tests for raster primitives (runs, gaps, components, density)."""

import numpy as np
import pytest

from repro.geometry import (
    as_binary,
    component_areas,
    connected_components,
    density,
    gaps_in_line,
    runs_in_line,
    runs_per_column,
    runs_per_row,
    validate_clip,
)


class TestAsBinary:
    def test_bool_passthrough(self):
        arr = np.array([[True, False]])
        assert as_binary(arr).dtype == np.bool_

    def test_integer_nonzero(self):
        arr = np.array([[0, 1, 2, 255]], dtype=np.uint8)
        np.testing.assert_array_equal(as_binary(arr), [[False, True, True, True]])

    def test_signed_float_thresholds_at_zero(self):
        arr = np.array([[-0.9, -0.1, 0.1, 0.9]], dtype=np.float32)
        np.testing.assert_array_equal(as_binary(arr), [[False, False, True, True]])

    def test_unsigned_float_thresholds_at_half(self):
        arr = np.array([[0.0, 0.4, 0.6, 1.0]], dtype=np.float32)
        np.testing.assert_array_equal(as_binary(arr), [[False, False, True, True]])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            as_binary(np.zeros(4))

    def test_validate_clip_returns_uint8(self):
        out = validate_clip(np.array([[0.9, -0.9]], dtype=np.float32))
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, [[1, 0]])


class TestRuns:
    def test_runs_in_line_basic(self):
        line = np.array([0, 1, 1, 0, 1, 0, 0, 1, 1, 1])
        assert runs_in_line(line) == [(1, 3), (4, 5), (7, 10)]

    def test_runs_empty_and_full(self):
        assert runs_in_line(np.zeros(5)) == []
        assert runs_in_line(np.ones(5)) == [(0, 5)]

    def test_gaps_exclude_borders(self):
        line = np.array([0, 1, 1, 0, 0, 1, 0])
        assert gaps_in_line(line) == [(3, 5)]

    def test_gaps_need_two_runs(self):
        assert gaps_in_line(np.array([0, 1, 1, 0])) == []

    def test_runs_per_row_and_column_agree_with_transpose(self):
        rng = np.random.default_rng(0)
        img = (rng.random((6, 9)) < 0.4).astype(np.uint8)
        rows = {(r.line, r.start, r.stop) for r in runs_per_row(img)}
        cols_t = {(r.line, r.start, r.stop) for r in runs_per_row(img.T)}
        cols = {(r.line, r.start, r.stop) for r in runs_per_column(img)}
        assert cols == cols_t
        assert rows == {
            (r.line, r.start, r.stop) for r in runs_per_column(img.T)
        }

    def test_run_length(self):
        run = runs_per_row(np.array([[1, 1, 1, 0]]))[0]
        assert run.length == 3


class TestComponents:
    def test_diagonal_pixels_are_separate_polygons(self):
        img = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        _, count = connected_components(img)
        assert count == 2

    def test_edge_connected_pixels_merge(self):
        img = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        _, count = connected_components(img)
        assert count == 1

    def test_component_areas(self):
        img = np.zeros((6, 6), dtype=np.uint8)
        img[0:2, 0:2] = 1  # area 4
        img[4:6, 3:6] = 1  # area 6
        areas = sorted(component_areas(img))
        assert areas == [4, 6]

    def test_component_areas_empty(self):
        assert component_areas(np.zeros((3, 3))).size == 0


class TestDensity:
    def test_density_values(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        img[:2] = 1
        assert density(img) == 0.5
        assert density(np.zeros((4, 4))) == 0.0
        assert density(np.ones((4, 4))) == 1.0
