"""Unit + property tests for rectangles and rectangle decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import Rect, decompose_rects, merge_touching_rects, rects_to_raster


class TestRectBasics:
    def test_measures(self):
        r = Rect(1, 2, 4, 7)
        assert r.width == 3
        assert r.height == 5
        assert r.area == 15
        assert r.center == (2.5, 4.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(3, 0, 2, 5)

    def test_ordering_is_lexicographic(self):
        assert Rect(0, 0, 1, 1) < Rect(0, 1, 1, 2) < Rect(1, 0, 2, 1)


class TestRectRelations:
    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(2, 2, 4, 4)

    def test_abutting_rects_touch_but_do_not_intersect(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(4, 0, 8, 4)
        assert not a.intersects(b)
        assert a.touches(b)
        assert a.intersection(b) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert not r.contains_point(4, 0)
        assert not r.contains_point(0, 4)

    def test_translate_and_expand(self):
        r = Rect(1, 1, 3, 3)
        assert r.translated(2, -1) == Rect(3, 0, 5, 2)
        assert r.expanded(1) == Rect(0, 0, 4, 4)

    def test_shrinking_to_nothing_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 1, 3, 3).expanded(-1)

    def test_clipped(self):
        bounds = Rect(0, 0, 4, 4)
        assert Rect(2, 2, 8, 8).clipped(bounds) == Rect(2, 2, 4, 4)
        assert Rect(5, 5, 8, 8).clipped(bounds) is None


class TestRasterization:
    def test_rects_to_raster_sets_exact_pixels(self):
        img = rects_to_raster([Rect(1, 0, 3, 2)], (4, 4))
        expected = np.zeros((4, 4), dtype=np.uint8)
        expected[0:2, 1:3] = 1
        np.testing.assert_array_equal(img, expected)

    def test_out_of_bounds_rects_are_clipped(self):
        img = rects_to_raster([Rect(-2, -2, 2, 2), Rect(10, 10, 20, 20)], (4, 4))
        assert img[:2, :2].all()
        assert img.sum() == 4

    def test_decompose_simple_vertical_wire(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 2:5] = 1
        assert decompose_rects(img) == [Rect(2, 0, 5, 8)]

    def test_decompose_rejects_non_2d(self):
        with pytest.raises(ValueError):
            decompose_rects(np.zeros((2, 2, 2)))

    def test_decompose_splits_at_run_change(self):
        img = np.zeros((6, 8), dtype=np.uint8)
        img[:, 2:4] = 1
        img[2:4, 2:7] = 1  # connector widens the run in rows 2-3
        rects = decompose_rects(img)
        assert Rect(2, 0, 4, 2) in rects
        assert Rect(2, 2, 7, 4) in rects
        assert Rect(2, 4, 4, 6) in rects

    def test_merge_touching_rects_is_canonical(self):
        shape = (8, 8)
        split = [Rect(0, 0, 2, 4), Rect(0, 4, 2, 8)]
        merged = merge_touching_rects(split, shape)
        assert merged == [Rect(0, 0, 2, 8)]


@st.composite
def binary_rasters(draw, max_side=12):
    h = draw(st.integers(1, max_side))
    w = draw(st.integers(1, max_side))
    return draw(
        hnp.arrays(dtype=np.uint8, shape=(h, w), elements=st.integers(0, 1))
    )


class TestDecomposeProperties:
    @given(binary_rasters())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_exact(self, img):
        rects = decompose_rects(img)
        back = rects_to_raster(rects, img.shape)
        np.testing.assert_array_equal(back, (img != 0).astype(np.uint8))

    @given(binary_rasters())
    @settings(max_examples=60, deadline=None)
    def test_no_overlaps_and_area_conserved(self, img):
        rects = decompose_rects(img)
        total = sum(r.area for r in rects)
        assert total == int((img != 0).sum())
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.intersects(b)
