"""Unit + property tests for clip transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    center_crop,
    dihedral_variants,
    flip_horizontal,
    flip_vertical,
    pad_to,
    random_crop,
    rotate90,
)


@st.composite
def clips(draw, max_side=10):
    h = draw(st.integers(1, max_side))
    w = draw(st.integers(1, max_side))
    return draw(
        hnp.arrays(dtype=np.uint8, shape=(h, w), elements=st.integers(0, 1))
    )


class TestFlipsAndRotations:
    @given(clips())
    @settings(max_examples=40, deadline=None)
    def test_flips_are_involutions(self, img):
        np.testing.assert_array_equal(flip_horizontal(flip_horizontal(img)), img)
        np.testing.assert_array_equal(flip_vertical(flip_vertical(img)), img)

    @given(clips())
    @settings(max_examples=40, deadline=None)
    def test_four_quarter_turns_are_identity(self, img):
        out = img
        for _ in range(4):
            out = rotate90(out)
        np.testing.assert_array_equal(out, img)

    def test_rotate_direction(self):
        img = np.array([[1, 0], [0, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(rotate90(img), [[0, 0], [1, 0]])

    def test_dihedral_variant_count(self):
        img = np.arange(6, dtype=np.uint8).reshape(2, 3) % 2
        variants = dihedral_variants(img)
        assert len(variants) == 8


class TestPadCrop:
    def test_pad_centers_content(self):
        img = np.ones((2, 2), dtype=np.uint8)
        out = pad_to(img, (4, 4))
        assert out.shape == (4, 4)
        assert out[1:3, 1:3].all()
        assert out.sum() == 4

    def test_pad_rejects_shrinking(self):
        with pytest.raises(ValueError):
            pad_to(np.ones((4, 4)), (2, 2))

    def test_center_crop_inverse_of_pad_for_even_margins(self):
        img = np.arange(16, dtype=np.uint8).reshape(4, 4)
        padded = pad_to(img, (8, 8))
        np.testing.assert_array_equal(center_crop(padded, (4, 4)), img)

    def test_center_crop_rejects_growing(self):
        with pytest.raises(ValueError):
            center_crop(np.ones((2, 2)), (4, 4))

    def test_random_crop_window_is_within_bounds(self):
        rng = np.random.default_rng(0)
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        for _ in range(10):
            out = random_crop(img, (3, 3), rng)
            assert out.shape == (3, 3)

    def test_random_crop_full_size_is_identity(self):
        rng = np.random.default_rng(0)
        img = np.arange(16, dtype=np.uint8).reshape(4, 4)
        np.testing.assert_array_equal(random_crop(img, (4, 4), rng), img)
