"""Unit + property tests for the squish representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    SquishPattern,
    scan_lines_x,
    scan_lines_y,
    squish,
    topology_from_lines,
    unsquish,
)


def vertical_wire_clip():
    img = np.zeros((8, 8), dtype=np.uint8)
    img[:, 2:5] = 1
    return img


class TestScanLines:
    def test_vertical_wire_x_lines(self):
        np.testing.assert_array_equal(
            scan_lines_x(vertical_wire_clip()), [0, 2, 5, 8]
        )

    def test_vertical_wire_y_lines_only_borders(self):
        np.testing.assert_array_equal(scan_lines_y(vertical_wire_clip()), [0, 8])

    def test_empty_clip_has_border_lines_only(self):
        img = np.zeros((4, 6), dtype=np.uint8)
        np.testing.assert_array_equal(scan_lines_x(img), [0, 6])
        np.testing.assert_array_equal(scan_lines_y(img), [0, 4])

    def test_checkerboard_has_all_lines(self):
        img = np.indices((4, 4)).sum(axis=0) % 2
        np.testing.assert_array_equal(scan_lines_x(img), [0, 1, 2, 3, 4])


class TestSquishPattern:
    def test_roundtrip_simple(self):
        img = vertical_wire_clip()
        pattern = squish(img)
        np.testing.assert_array_equal(pattern.to_image(), img)

    def test_dimensions_and_complexity(self):
        pattern = squish(vertical_wire_clip())
        assert pattern.width == 8
        assert pattern.height == 8
        assert pattern.complexity == (3, 1)
        np.testing.assert_array_equal(pattern.dx, [2, 3, 3])
        np.testing.assert_array_equal(pattern.dy, [8])

    def test_geometry_signature_is_hashable_and_stable(self):
        a = squish(vertical_wire_clip()).geometry_signature()
        b = squish(vertical_wire_clip()).geometry_signature()
        assert a == b
        assert hash(a) == hash(b)
        assert a == ((2, 3, 3), (8,))

    def test_validation_topology_shape(self):
        with pytest.raises(ValueError, match="inconsistent"):
            SquishPattern(
                topology=np.ones((2, 2), dtype=bool),
                dx=np.array([1, 1, 1]),
                dy=np.array([1, 1]),
            )

    def test_validation_positive_deltas(self):
        with pytest.raises(ValueError, match="positive"):
            SquishPattern(
                topology=np.ones((1, 2), dtype=bool),
                dx=np.array([1, 0]),
                dy=np.array([1]),
            )

    def test_unsquish_matches_to_image(self):
        topo = np.array([[True, False], [False, True]])
        dx = np.array([2, 3])
        dy = np.array([1, 2])
        img = unsquish(topo, dx, dy)
        assert img.shape == (3, 5)
        assert img[0, :2].all() and not img[0, 2:].any()

    def test_canonical_merges_duplicate_lines(self):
        # A topology with identical adjacent columns is not canonical.
        pattern = SquishPattern(
            topology=np.array([[True, True, False]]),
            dx=np.array([2, 2, 4]),
            dy=np.array([8]),
        )
        canonical = pattern.canonical()
        assert canonical.complexity == (2, 1)
        np.testing.assert_array_equal(canonical.dx, [4, 4])


@st.composite
def clips(draw, max_side=16):
    h = draw(st.integers(1, max_side))
    w = draw(st.integers(1, max_side))
    return draw(
        hnp.arrays(dtype=np.uint8, shape=(h, w), elements=st.integers(0, 1))
    )


class TestSquishProperties:
    @given(clips())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_is_exact(self, img):
        np.testing.assert_array_equal(squish(img).to_image(), img)

    @given(clips())
    @settings(max_examples=80, deadline=None)
    def test_canonical_form_is_minimal(self, img):
        pattern = squish(img)
        topo = pattern.topology
        if topo.shape[1] > 1:
            adjacent_equal_cols = (topo[:, 1:] == topo[:, :-1]).all(axis=0)
            assert not adjacent_equal_cols.any()
        if topo.shape[0] > 1:
            adjacent_equal_rows = (topo[1:] == topo[:-1]).all(axis=1)
            assert not adjacent_equal_rows.any()

    @given(clips())
    @settings(max_examples=50, deadline=None)
    def test_deltas_sum_to_clip_size(self, img):
        pattern = squish(img)
        assert pattern.dx.sum() == img.shape[1]
        assert pattern.dy.sum() == img.shape[0]


class TestTopologyFromLines:
    def test_majority_vote_recovers_clean_pattern(self):
        img = vertical_wire_clip()
        pattern = topology_from_lines(
            img, np.array([0, 2, 5, 8]), np.array([0, 8])
        )
        np.testing.assert_array_equal(pattern.to_image(), img)

    def test_majority_vote_suppresses_minority_noise(self):
        img = vertical_wire_clip().astype(np.uint8)
        img[3, 2] = 0  # a single dropout inside the wire
        pattern = topology_from_lines(
            img, np.array([0, 2, 5, 8]), np.array([0, 8])
        )
        np.testing.assert_array_equal(pattern.to_image(), vertical_wire_clip())

    def test_rejects_lines_missing_borders(self):
        img = vertical_wire_clip()
        with pytest.raises(ValueError, match="span"):
            topology_from_lines(img, np.array([2, 5, 8]), np.array([0, 8]))

    def test_rejects_unsorted_lines(self):
        img = vertical_wire_clip()
        with pytest.raises(ValueError, match="increasing"):
            topology_from_lines(img, np.array([0, 5, 2, 8]), np.array([0, 8]))
