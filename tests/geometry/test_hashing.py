"""Unit tests for pattern identities (exact, geometry, complexity)."""

import numpy as np

from repro.geometry import (
    complexity_key,
    flip_horizontal,
    geometry_key,
    pattern_hash,
    squish,
    squish_of,
)


def wire(width, offset=2, size=8):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, offset : offset + width] = 1
    return img


class TestPatternHash:
    def test_deterministic(self):
        assert pattern_hash(wire(3)) == pattern_hash(wire(3))

    def test_distinguishes_content(self):
        assert pattern_hash(wire(3)) != pattern_hash(wire(4))

    def test_shape_aware(self):
        a = np.zeros((2, 8), dtype=np.uint8)
        b = np.zeros((4, 4), dtype=np.uint8)
        assert pattern_hash(a) != pattern_hash(b)

    def test_dtype_invariant(self):
        img = wire(3)
        as_float = img.astype(np.float32)
        assert pattern_hash(img) == pattern_hash(as_float)


class TestGeometryKey:
    def test_matches_squish_signature(self):
        img = wire(3)
        assert geometry_key(img) == squish(img).geometry_signature()

    def test_same_topology_different_geometry_differ(self):
        # Same single-wire topology, different width: H2 distinguishes.
        assert geometry_key(wire(3)) != geometry_key(wire(4))

    def test_mirrored_wire_same_h2_class_when_symmetric(self):
        img = wire(3, offset=2, size=8)
        mirrored = flip_horizontal(img)
        # offset 2 width 3 in size 8: dx = (2,3,3) vs mirrored (3,3,2).
        assert geometry_key(img) != geometry_key(mirrored)

    def test_accepts_squish_pattern_directly(self):
        pattern = squish(wire(3))
        assert geometry_key(pattern) == pattern.geometry_signature()
        assert squish_of(pattern) is pattern


class TestComplexityKey:
    def test_complexity_of_wire(self):
        assert complexity_key(wire(3)) == (3, 1)

    def test_width_change_keeps_complexity_class(self):
        # H1 ignores geometry: both are 3-cell-wide single wires.
        assert complexity_key(wire(3)) == complexity_key(wire(4))
