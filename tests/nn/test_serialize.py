"""Unit tests for checkpoint serialization."""

import numpy as np
import pytest

from repro.nn import Conv2d, load_into, load_module_state, save_module


def make_module(seed=0):
    return Conv2d(1, 2, 3, np.random.default_rng(seed))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        module = make_module(seed=1)
        path = tmp_path / "ckpt.npz"
        save_module(module, path, meta={"role": "test", "steps": 5})
        fresh = make_module(seed=2)
        meta = load_into(fresh, path)
        assert meta == {"role": "test", "steps": 5}
        np.testing.assert_array_equal(fresh.weight.data, module.weight.data)
        np.testing.assert_array_equal(fresh.bias.data, module.bias.data)

    def test_meta_defaults_to_empty(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_module(make_module(), path)
        _, meta = load_module_state(path)
        assert meta == {}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ckpt.npz"
        save_module(make_module(), path)
        assert path.exists()

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_module(make_module(), path)
        other = Conv2d(2, 2, 3, np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_into(other, path)
