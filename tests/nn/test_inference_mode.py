"""Inference fast path: train/eval parity, cache hygiene, mode plumbing."""

import numpy as np
import pytest

from repro.diffusion import InpaintConfig, inpaint, linear_schedule
from repro.nn import Conv2d, GroupNorm, SiLU, TimeUnet, UNetConfig, inference_mode
from repro.nn.layers import gn_silu

FULL_CONFIG = UNetConfig(
    image_size=32,
    base_channels=16,
    channel_mults=(1, 2),
    num_res_blocks=1,
    groups=8,
    time_dim=32,
    attention=True,
    seed=7,
)


def _bits(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a).view(np.uint32)


@pytest.fixture(scope="module")
def model():
    return TimeUnet(FULL_CONFIG)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 1, 32, 32)).astype(np.float32)
    t = np.full(4, 13, dtype=np.int64)
    return x, t


class TestForwardParity:
    def test_eval_forward_bit_identical(self, model, batch):
        x, t = batch
        model.train()
        out_train = model.forward(x, t)
        with inference_mode(model):
            out_eval = model.forward(x, t)
        np.testing.assert_array_equal(_bits(out_train), _bits(out_eval))

    def test_eval_forward_stable_across_calls(self, model, batch):
        """Workspace reuse must not leak state between forwards."""
        x, t = batch
        with inference_mode(model):
            first = model.forward(x, t)
            model.forward(x[:, :, ::-1].copy(), t)  # different input between
            second = model.forward(x, t)
        np.testing.assert_array_equal(_bits(first), _bits(second))

    def test_varying_batch_sizes(self, model, batch):
        """Partial chunks hit fresh workspace shapes; parity must hold."""
        x, t = batch
        model.train()
        ref = model.forward(x[:3], t[:3])
        with inference_mode(model):
            out = model.forward(x[:3], t[:3])
        np.testing.assert_array_equal(_bits(ref), _bits(out))

    def test_layer_level_parity(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 8, 16, 16)).astype(np.float32)
        conv = Conv2d(8, 4, 3, rng)
        ref = conv.forward(x)
        conv.eval()
        np.testing.assert_array_equal(_bits(ref), _bits(conv.forward(x).copy()))
        norm = GroupNorm(4, 8)
        act = SiLU()
        ref = act(norm(x))
        norm.eval()
        act.eval()
        np.testing.assert_array_equal(_bits(ref), _bits(act(norm(x)).copy()))
        # The fused pair used inside eval-mode ResBlocks.
        np.testing.assert_array_equal(_bits(ref), _bits(gn_silu(norm, x).copy()))


class TestModeSwitching:
    def test_eval_sets_and_train_restores_flags(self, model):
        model.eval()
        assert all(not m.training for m in model.walk_modules())
        model.train()
        assert all(m.training for m in model.walk_modules())

    def test_inference_mode_restores_previous_state(self, model):
        model.train()
        with inference_mode(model):
            assert not model.training
            assert not model.stem.training
        assert model.training
        assert model.stem.training
        # A model already in eval stays in eval after the context exits.
        model.eval()
        with inference_mode(model):
            pass
        assert not model.training
        model.train()

    def test_training_still_works_after_inference(self, model, batch):
        x, t = batch
        with inference_mode(model):
            model.forward(x, t)
        model.train()
        out = model.forward(x, t)
        model.backward(np.ones_like(out))  # needs the tape => training path
        grads = [p.grad for p in model.parameters()]
        assert any(np.abs(g).sum() > 0 for g in grads)
        model.zero_grad()


class TestCacheHygiene:
    def test_no_caches_alive_after_inference_sampling(self, model):
        """The regression the fast path exists for: sampling in inference
        mode must leave no backward caches pinned on any module."""
        schedule = linear_schedule(40)
        known = np.full((2, 1, 32, 32), -1.0, dtype=np.float32)
        mask = np.zeros((32, 32), dtype=bool)
        mask[:, :16] = True
        model.train()
        model.forward(  # leave stale training caches behind on purpose
            np.zeros((2, 1, 32, 32), dtype=np.float32),
            np.zeros(2, dtype=np.int64),
        )
        with inference_mode(model):
            inpaint(
                model,
                schedule,
                known,
                mask,
                np.random.default_rng(0),
                InpaintConfig(num_steps=3),
            )
            for module in model.walk_modules():
                for attr in ("_cache", "_tape", "_skip_grads"):
                    assert getattr(module, attr, None) is None, (
                        f"{type(module).__name__}.{attr} still alive in "
                        "inference mode"
                    )
        model.train()

    def test_conv_workspaces_bounded(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(4, 4, 3, rng)
        conv.eval()
        for n in range(1, 8):  # 7 distinct input shapes
            conv.forward(np.zeros((n, 4, 8, 8), dtype=np.float32))
        from repro.nn.layers import _MAX_WORKSPACES

        assert len(conv._workspaces) <= _MAX_WORKSPACES
