"""Finite-difference gradient checks for every backward rule.

Parameters are float32, so central differences carry roundoff noise around
``loss_magnitude * 1e-7 / eps``; tolerances and eps are chosen accordingly
(see the analysis notes in DESIGN.md).  Each check perturbs a sample of
entries rather than the full tensors to keep the suite fast.
"""

import numpy as np
import pytest

from repro.nn import Conv2d, GroupNorm, Linear, SiLU, TimeUnet, UNetConfig
from repro.nn.blocks import ResBlock, SelfAttention2d, TimeMlp

EPS = 4e-2
RTOL = 8e-2


def _richardson(read, write, loss_fn):
    """Richardson-extrapolated central difference (cancels the O(eps^2)
    truncation term, which dominates for strongly curved directions)."""
    old = read()

    def central(eps):
        write(old + eps)
        f_plus = loss_fn()
        write(old - eps)
        f_minus = loss_fn()
        write(old)
        return (f_plus - f_minus) / (2 * eps)

    coarse = central(EPS)
    fine = central(EPS / 2)
    return (4.0 * fine - coarse) / 3.0


def check_param_grads(module, loss_fn, n_checks=3, seed=7):
    """Compare analytic parameter grads against extrapolated differences."""
    rng = np.random.default_rng(seed)
    for name, p in module.named_parameters():
        for _ in range(min(n_checks, p.data.size)):
            idx = np.unravel_index(int(rng.integers(p.data.size)), p.data.shape)
            numeric = _richardson(
                lambda: float(p.data[idx]),
                lambda v: p.data.__setitem__(idx, v),
                loss_fn,
            )
            analytic = float(p.grad[idx])
            tol = RTOL * max(abs(numeric), abs(analytic), 5e-3)
            assert abs(numeric - analytic) <= tol, (
                f"{name}{idx}: numeric={numeric:.6f} analytic={analytic:.6f}"
            )


def check_input_grad(x, dx, loss_fn, n_checks=5, seed=11):
    rng = np.random.default_rng(seed)
    for _ in range(n_checks):
        idx = tuple(int(rng.integers(s)) for s in x.shape)
        numeric = _richardson(
            lambda: float(x[idx]),
            lambda v: x.__setitem__(idx, v),
            loss_fn,
        )
        analytic = float(dx[idx])
        tol = RTOL * max(abs(numeric), abs(analytic), 5e-3)
        assert abs(numeric - analytic) <= tol


def randomize(module, rng, scale=0.3):
    for _, p in module.named_parameters():
        p.data[...] = rng.normal(0, scale, size=p.data.shape).astype(np.float32)


class TestLayerGradients:
    def quadratic_setup(self, module, x_shape, seed=0):
        rng = np.random.default_rng(seed)
        randomize(module, rng)
        x = rng.normal(size=x_shape).astype(np.float32)
        target = rng.normal(size=np.asarray(module(x)).shape).astype(np.float32)

        def loss_fn():
            out = module.forward(x)
            return float(np.sum((out - target) ** 2, dtype=np.float64))

        out = module.forward(x)
        module.zero_grad()
        dx = module.backward(2.0 * (out - target))
        return x, dx, loss_fn

    def test_conv2d(self):
        module = Conv2d(2, 3, 3, np.random.default_rng(1))
        x, dx, loss_fn = self.quadratic_setup(module, (2, 2, 5, 5))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)

    def test_conv2d_unpadded(self):
        module = Conv2d(1, 2, 3, np.random.default_rng(1), padding=0)
        x, dx, loss_fn = self.quadratic_setup(module, (1, 1, 5, 5))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)

    def test_linear(self):
        module = Linear(4, 3, np.random.default_rng(1))
        x, dx, loss_fn = self.quadratic_setup(module, (6, 4))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)

    def test_groupnorm(self):
        module = GroupNorm(2, 4)
        x, dx, loss_fn = self.quadratic_setup(module, (2, 4, 3, 3))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)

    def test_silu(self):
        module = SiLU()
        x, dx, loss_fn = self.quadratic_setup(module, (3, 5))
        check_input_grad(x, dx, loss_fn)

    def test_attention(self):
        module = SelfAttention2d(8, 4, np.random.default_rng(2))
        x, dx, loss_fn = self.quadratic_setup(module, (2, 8, 3, 3))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)


class TestBlockGradients:
    def test_resblock(self):
        rng = np.random.default_rng(3)
        module = ResBlock(4, 6, 8, 2, rng)
        randomize(module, rng)
        x = rng.normal(size=(2, 4, 4, 4)).astype(np.float32)
        t_emb = rng.normal(size=(2, 8)).astype(np.float32)
        target = rng.normal(size=(2, 6, 4, 4)).astype(np.float32)

        def loss_fn():
            out = module.forward(x, t_emb)
            return float(np.sum((out - target) ** 2, dtype=np.float64))

        out = module.forward(x, t_emb)
        module.zero_grad()
        dx, dt = module.backward(2.0 * (out - target))
        check_param_grads(module, loss_fn)
        check_input_grad(x, dx, loss_fn)
        check_input_grad(t_emb, dt, loss_fn, n_checks=4)

    def test_time_mlp(self):
        rng = np.random.default_rng(4)
        module = TimeMlp(8, rng)
        randomize(module, rng)
        t = np.array([2, 5])
        target = rng.normal(size=(2, 16)).astype(np.float32)

        def loss_fn():
            out = module.forward(t)
            return float(np.sum((out - target) ** 2, dtype=np.float64))

        out = module.forward(t)
        module.zero_grad()
        module.backward(2.0 * (out - target))
        check_param_grads(module, loss_fn)


class TestUnetGradients:
    @pytest.mark.parametrize("attention", [False, True])
    def test_end_to_end(self, attention):
        cfg = UNetConfig(
            image_size=8,
            base_channels=8,
            channel_mults=(1, 2),
            num_res_blocks=1,
            groups=4,
            time_dim=8,
            attention=attention,
            seed=3,
        )
        net = TimeUnet(cfg)
        rng = np.random.default_rng(42)
        randomize(net, rng, scale=0.2)
        x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
        t = np.array([3, 7])
        target = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)

        def loss_fn():
            out = net.forward(x, t)
            return float(np.sum((out - target) ** 2, dtype=np.float64))

        out = net.forward(x, t)
        net.zero_grad()
        dx = net.backward(2.0 * (out - target))
        check_param_grads(net, loss_fn, n_checks=1)
        check_input_grad(x, dx, loss_fn)
