"""Unit tests for the UNet architecture and module plumbing."""

import numpy as np
import pytest

from repro.nn import TimeUnet, UNetConfig


def tiny_config(**overrides):
    defaults = dict(
        image_size=8,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        groups=4,
        time_dim=8,
        attention=False,
        seed=0,
    )
    defaults.update(overrides)
    return UNetConfig(**defaults)


class TestConfigValidation:
    def test_image_size_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            UNetConfig(image_size=10, channel_mults=(1, 2, 2), groups=4,
                       base_channels=8)

    def test_group_divisibility(self):
        with pytest.raises(ValueError, match="groups"):
            UNetConfig(image_size=8, base_channels=6, groups=4)

    def test_level_channels(self):
        cfg = tiny_config(base_channels=8, channel_mults=(1, 2, 4))
        assert cfg.level_channels == (8, 16, 32)


class TestForward:
    @pytest.mark.parametrize("mults", [(1,), (1, 2), (1, 2, 2)])
    def test_output_shape_matches_input(self, mults):
        cfg = tiny_config(channel_mults=mults)
        net = TimeUnet(cfg)
        x = np.zeros((3, 1, 8, 8), dtype=np.float32)
        out = net.forward(x, np.array([0, 1, 2]))
        assert out.shape == x.shape

    def test_zero_head_makes_initial_output_zero(self):
        net = TimeUnet(tiny_config())
        x = np.random.default_rng(0).normal(size=(2, 1, 8, 8)).astype(np.float32)
        out = net.forward(x, np.array([1, 2]))
        np.testing.assert_array_equal(out, np.zeros_like(out))

    def test_timestep_conditioning_changes_output(self):
        net = TimeUnet(tiny_config())
        rng = np.random.default_rng(1)
        for _, p in net.named_parameters():
            p.data[...] = rng.normal(0, 0.2, size=p.data.shape).astype(np.float32)
        x = rng.normal(size=(1, 1, 8, 8)).astype(np.float32)
        out_a = net.forward(x, np.array([0]))
        out_b = net.forward(x, np.array([9]))
        assert not np.allclose(out_a, out_b)

    def test_backward_before_forward_rejected(self):
        net = TimeUnet(tiny_config())
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 1, 8, 8), dtype=np.float32))

    def test_backward_consumes_tape(self):
        net = TimeUnet(tiny_config())
        x = np.zeros((1, 1, 8, 8), dtype=np.float32)
        net.forward(x, np.array([0]))
        net.backward(np.zeros_like(x))
        with pytest.raises(RuntimeError):
            net.backward(np.zeros_like(x))


class TestParameters:
    def test_num_parameters_positive_and_scales_with_width(self):
        small = TimeUnet(tiny_config(base_channels=8)).num_parameters()
        large = TimeUnet(tiny_config(base_channels=16, groups=8)).num_parameters()
        assert 0 < small < large

    def test_state_dict_roundtrip(self):
        net_a = TimeUnet(tiny_config(seed=1))
        net_b = TimeUnet(tiny_config(seed=2))
        net_b.load_state_dict(net_a.state_dict())
        x = np.random.default_rng(0).normal(size=(1, 1, 8, 8)).astype(np.float32)
        t = np.array([3])
        np.testing.assert_array_equal(net_a.forward(x, t), net_b.forward(x, t))

    def test_state_dict_mismatch_rejected(self):
        net = TimeUnet(tiny_config())
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_state_dict_shape_mismatch_rejected(self):
        net = TimeUnet(tiny_config())
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        net = TimeUnet(tiny_config())
        x = np.ones((1, 1, 8, 8), dtype=np.float32)
        net.forward(x, np.array([0]))
        net.backward(np.ones_like(x))
        net.zero_grad()
        assert all(not p.grad.any() for p in net.parameters())
