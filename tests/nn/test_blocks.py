"""Unit tests for composite blocks (ResBlock, attention, time embedding)."""

import numpy as np
import pytest

from repro.nn.blocks import ResBlock, SelfAttention2d, TimeMlp, sinusoidal_embedding


class TestSinusoidalEmbedding:
    def test_shape(self):
        emb = sinusoidal_embedding(np.array([0, 5, 10]), 16)
        assert emb.shape == (3, 16)

    def test_values_bounded(self):
        emb = sinusoidal_embedding(np.arange(100), 32)
        assert np.abs(emb).max() <= 1.0 + 1e-6

    def test_distinct_timesteps_distinct_embeddings(self):
        emb = sinusoidal_embedding(np.array([1, 2]), 16)
        assert not np.allclose(emb[0], emb[1])

    def test_t_zero_is_cos_one_sin_zero(self):
        emb = sinusoidal_embedding(np.array([0]), 8)
        np.testing.assert_allclose(emb[0, :4], 0.0, atol=1e-7)  # sin(0)
        np.testing.assert_allclose(emb[0, 4:], 1.0, atol=1e-7)  # cos(0)

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            sinusoidal_embedding(np.array([0]), 7)


class TestResBlockStructure:
    def test_identity_at_init(self):
        """Zero-initialized conv2 makes a fresh ResBlock the identity map
        (plus skip projection when channels change)."""
        rng = np.random.default_rng(0)
        block = ResBlock(4, 4, 8, 2, rng)
        x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        t_emb = rng.normal(size=(2, 8)).astype(np.float32)
        np.testing.assert_allclose(block(x, t_emb), x, atol=1e-6)

    def test_channel_projection_shape(self):
        rng = np.random.default_rng(0)
        block = ResBlock(4, 8, 8, 2, rng)
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        t_emb = rng.normal(size=(1, 8)).astype(np.float32)
        assert block(x, t_emb).shape == (1, 8, 6, 6)

    def test_timestep_bias_shifts_output(self):
        rng = np.random.default_rng(1)
        block = ResBlock(4, 4, 8, 2, rng)
        for _, p in block.named_parameters():
            p.data[...] = rng.normal(0, 0.2, size=p.data.shape).astype(np.float32)
        x = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        out_a = block(x, np.zeros((1, 8), dtype=np.float32))
        out_b = block(x, np.ones((1, 8), dtype=np.float32))
        assert not np.allclose(out_a, out_b)


class TestAttentionStructure:
    def test_identity_at_init(self):
        """Zero-initialized output projection makes attention the identity."""
        rng = np.random.default_rng(0)
        attn = SelfAttention2d(8, 4, rng)
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(attn(x), x, atol=1e-6)

    def test_global_receptive_field(self):
        """Perturbing one pixel influences every output position."""
        rng = np.random.default_rng(1)
        attn = SelfAttention2d(8, 4, rng)
        for _, p in attn.named_parameters():
            p.data[...] = rng.normal(0, 0.3, size=p.data.shape).astype(np.float32)
        x = rng.normal(size=(1, 8, 4, 4)).astype(np.float32)
        base = attn(x)
        x2 = x.copy()
        x2[0, :, 0, 0] += 1.0
        moved = attn(x2)
        delta = np.abs(moved - base).sum(axis=1)[0]
        assert (delta > 1e-6).mean() > 0.9  # nearly every position changed


class TestTimeMlp:
    def test_output_dim_is_twice_input(self):
        mlp = TimeMlp(16, np.random.default_rng(0))
        out = mlp(np.array([1, 2, 3]))
        assert out.shape == (3, 32)
