"""Unit tests for Adam, EMA and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Adam, Conv2d, Ema, Parameter, clip_grad_norm, global_grad_norm


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            p.grad += 2.0 * p.data  # d/dx ||x||^2
            opt.step()
        np.testing.assert_allclose(p.data, [0.0, 0.0], atol=1e-2)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()  # zero gradient: only decay acts
        opt.step()
        assert abs(float(p.data[0])) < 1.0

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ~= lr * sign(grad).
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.05)
        p.grad[...] = 3.0
        opt.step()
        assert float(p.data[0]) == pytest.approx(-0.05, rel=1e-3)


class TestEma:
    def make_module(self):
        return Conv2d(1, 1, 3, np.random.default_rng(0))

    def test_tracks_slow_average(self):
        module = self.make_module()
        ema = Ema(module, decay=0.5)
        original = module.weight.data.copy()
        module.weight.data[...] = original + 1.0
        ema.update()
        ema.swap_in()
        np.testing.assert_allclose(module.weight.data, original + 0.5, atol=1e-6)
        ema.swap_out()
        np.testing.assert_allclose(module.weight.data, original + 1.0, atol=1e-6)

    def test_double_swap_in_rejected(self):
        module = self.make_module()
        ema = Ema(module)
        ema.swap_in()
        with pytest.raises(RuntimeError):
            ema.swap_in()

    def test_swap_out_without_in_rejected(self):
        with pytest.raises(RuntimeError):
            Ema(self.make_module()).swap_out()

    def test_copy_to_other_module(self):
        module = self.make_module()
        ema = Ema(module, decay=0.9)
        target = self.make_module()
        ema.copy_to(target)
        np.testing.assert_array_equal(target.weight.data, module.weight.data)

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            Ema(self.make_module(), decay=1.0)


class TestClipping:
    def test_norm_computation(self):
        p1 = Parameter(np.zeros(1))
        p2 = Parameter(np.zeros(1))
        p1.grad[...] = 3.0
        p2.grad[...] = 4.0
        assert global_grad_norm([p1, p2]) == pytest.approx(5.0)

    def test_clip_scales_down_only(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [3.0, 4.0]
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert global_grad_norm([p]) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [0.3, 0.4]
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
