"""Unit tests for layer forward semantics (values and shapes)."""

import numpy as np
import pytest

from repro.nn import AvgPool2x, Conv2d, GroupNorm, Linear, SiLU, Upsample2x
from repro.nn.layers import Chain, Flatten, Identity, Reshape


def rng():
    return np.random.default_rng(0)


def naive_conv(x, w, b, pad):
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = xp.shape[2] - kh + 1
    ow = xp.shape[3] - kw + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            for y in range(oh):
                for xx in range(ow):
                    out[ni, fi, y, xx] = (
                        xp[ni, :, y : y + kh, xx : xx + kw] * w[fi]
                    ).sum() + b[fi]
    return out


class TestConv2d:
    def test_matches_naive_convolution(self):
        conv = Conv2d(2, 3, 3, rng())
        x = rng().normal(size=(2, 2, 5, 6)).astype(np.float32)
        out = conv(x)
        expected = naive_conv(x, conv.weight.data, conv.bias.data, 1)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_1x1_convolution_is_channel_mix(self):
        conv = Conv2d(4, 2, 1, rng(), padding=0)
        x = rng().normal(size=(1, 4, 3, 3)).astype(np.float32)
        out = conv(x)
        w = conv.weight.data[:, :, 0, 0]
        expected = np.einsum("fc,nchw->nfhw", w, x) + conv.bias.data[None, :, None, None]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_same_padding_preserves_spatial_dims(self):
        conv = Conv2d(1, 1, 3, rng())
        assert conv(np.zeros((1, 1, 7, 9), dtype=np.float32)).shape == (1, 1, 7, 9)

    def test_no_bias_option(self):
        conv = Conv2d(1, 2, 3, rng(), bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_zero_init_scale_gives_zero_output(self):
        conv = Conv2d(1, 1, 3, rng(), init_scale=0.0)
        x = rng().normal(size=(1, 1, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(conv(x), np.zeros((1, 1, 4, 4)))


class TestLinear:
    def test_affine_map(self):
        lin = Linear(3, 2, rng())
        x = rng().normal(size=(5, 3)).astype(np.float32)
        np.testing.assert_allclose(
            lin(x), x @ lin.weight.data.T + lin.bias.data, rtol=1e-5
        )

    def test_broadcasts_over_leading_dims(self):
        lin = Linear(3, 2, rng())
        x = rng().normal(size=(4, 5, 3)).astype(np.float32)
        assert lin(x).shape == (4, 5, 2)


class TestGroupNorm:
    def test_normalizes_within_groups(self):
        gn = GroupNorm(2, 4)
        x = rng().normal(loc=3.0, scale=2.0, size=(2, 4, 5, 5)).astype(np.float32)
        out = gn(x)
        grouped = out.reshape(2, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-5)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        gn = GroupNorm(1, 2)
        gn.gamma.data[...] = 2.0
        gn.beta.data[...] = 1.0
        x = rng().normal(size=(1, 2, 4, 4)).astype(np.float32)
        out = gn(x)
        grouped = out.reshape(1, 1, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 1.0, atol=1e-5)

    def test_channel_divisibility_enforced(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)


class TestSiLU:
    def test_values(self):
        act = SiLU()
        x = np.array([[-1e3, 0.0, 1e3]], dtype=np.float64)
        out = act(x)
        np.testing.assert_allclose(out[0], [0.0, 0.0, 1e3], atol=1e-6)

    def test_silu_at_one(self):
        act = SiLU()
        assert act(np.array([1.0]))[0] == pytest.approx(1 / (1 + np.exp(-1)))


class TestResampling:
    def test_upsample_repeats_pixels(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        out = Upsample2x()(x)
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == out[0, 0, 1, 1] == 0

    def test_avgpool_means(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2x()(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avgpool_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            AvgPool2x()(np.zeros((1, 1, 3, 4), dtype=np.float32))

    def test_pool_and_upsample_are_adjoint(self):
        """<P x, y> == <x, P^T y> — backward implements the exact adjoint."""
        pool = AvgPool2x()
        x = rng().normal(size=(2, 3, 4, 4)).astype(np.float32)
        y = rng().normal(size=(2, 3, 2, 2)).astype(np.float32)
        lhs = float((pool(x) * y).sum())
        rhs = float((x * pool.backward(y)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-5)

        up = Upsample2x()
        xu = rng().normal(size=(2, 3, 2, 2)).astype(np.float32)
        yu = rng().normal(size=(2, 3, 4, 4)).astype(np.float32)
        lhs = float((up(xu) * yu).sum())
        rhs = float((xu * up.backward(yu)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-5)


class TestStructural:
    def test_identity(self):
        x = np.ones((2, 2))
        ident = Identity()
        assert ident(x) is x
        assert ident.backward(x) is x

    def test_flatten_reshape_roundtrip(self):
        x = rng().normal(size=(3, 2, 4, 4)).astype(np.float32)
        flat = Flatten()
        out = flat(x)
        assert out.shape == (3, 32)
        np.testing.assert_array_equal(flat.backward(out), x)
        reshape = Reshape((2, 4, 4))
        np.testing.assert_array_equal(reshape(out), x)

    def test_chain_composes_in_order(self):
        chain = Chain([SiLU(), Flatten()])
        x = rng().normal(size=(2, 1, 3, 3)).astype(np.float32)
        assert chain(x).shape == (2, 9)

    def test_chain_collects_parameters(self):
        chain = Chain([Conv2d(1, 2, 3, rng()), SiLU(), Conv2d(2, 1, 3, rng())])
        assert len(chain.parameters()) == 4
