"""Unit tests for the command-line interface (library-level commands)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_clips


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["generate", "--out", "x.npz"]).command == "generate"
        assert parser.parse_args(["drc", "x.npz"]).command == "drc"
        assert parser.parse_args(["table1"]).command == "table1"
        assert parser.parse_args(["zoo", "list"]).action == "list"


class TestGenerateAndDrc:
    def test_generate_writes_library(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = main(["generate", "-n", "4", "--out", str(out), "--seed", "3"])
        assert code == 0
        clips, meta = load_clips(out)
        assert len(clips) == 4
        assert meta["deck"] == "advanced"
        assert "DR-clean" in capsys.readouterr().out

    def test_drc_passes_on_generated_library(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "3", "--out", str(out)])
        code = main(["drc", str(out)])
        assert code == 0
        assert "3/3" in capsys.readouterr().out

    def test_drc_fails_on_wrong_deck_clips(self, tmp_path, capsys):
        from repro.io import save_clips

        bad = np.zeros((32, 32), dtype=np.uint8)
        bad[:, 4:6] = 1  # width 2: violates every deck
        path = tmp_path / "bad.npz"
        save_clips(path, [bad])
        code = main(["drc", str(path)])
        assert code == 1

    def test_squish_command(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        code = main(["squish", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "complexity" in captured
        assert "dx:" in captured

    def test_render_ascii(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        code = main(["render", str(out)])
        assert code == 0
        assert "#" in capsys.readouterr().out

    def test_render_png(self, tmp_path):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        png = tmp_path / "clip.png"
        code = main(["render", str(out), "--out", str(png)])
        assert code == 0
        assert png.exists()

    def test_zoo_list(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        code = main(["zoo", "list"])
        assert code == 0
        assert "no artifacts" in capsys.readouterr().out
