"""Unit tests for the command-line interface (library-level commands)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_clips


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["generate", "--out", "x.npz"]).command == "generate"
        assert parser.parse_args(["drc", "x.npz"]).command == "drc"
        assert parser.parse_args(["table1"]).command == "table1"
        assert parser.parse_args(["zoo", "list"]).action == "list"

    def test_serve_command_parses(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8157 and args.host == "127.0.0.1"
        args = parser.parse_args([
            "serve", "--port", "0", "--jobs", "4", "--max-batch", "16",
            "--gather-window-ms", "5", "--session-dir", "snaps",
            "--checkpoint-every", "3", "--library-shards", "2",
        ])
        assert args.jobs == 4
        assert args.max_batch == 16
        assert args.gather_window_ms == 5.0
        assert args.session_dir == "snaps"
        assert args.checkpoint_every == 3

    def test_serve_checkpoint_needs_session_dir(self, capsys):
        code = main(["serve", "--port", "0", "--checkpoint-every", "2"])
        assert code == 2
        assert "--session-dir" in capsys.readouterr().err

    def test_library_commands_parse(self):
        parser = build_parser()
        info = parser.parse_args(["library", "info", "d"])
        assert info.command == "library"
        assert info.library_command == "info"
        merge = parser.parse_args(["library", "merge", "out", "a", "b"])
        assert merge.library_command == "merge"
        assert merge.sources == ["a", "b"]
        gen = parser.parse_args(
            ["generate", "--out", "x.npz", "--library-shards", "4",
             "--library-dir", "lib"]
        )
        assert gen.library_shards == 4
        assert gen.library_dir == "lib"


class TestGenerateAndDrc:
    def test_generate_writes_library(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = main(["generate", "-n", "4", "--out", str(out), "--seed", "3"])
        assert code == 0
        clips, meta = load_clips(out)
        assert len(clips) == 4
        assert meta["deck"] == "advanced"
        assert "DR-clean" in capsys.readouterr().out

    def test_drc_passes_on_generated_library(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "3", "--out", str(out)])
        code = main(["drc", str(out)])
        assert code == 0
        assert "3/3" in capsys.readouterr().out

    def test_drc_fails_on_wrong_deck_clips(self, tmp_path, capsys):
        from repro.io import save_clips

        bad = np.zeros((32, 32), dtype=np.uint8)
        bad[:, 4:6] = 1  # width 2: violates every deck
        path = tmp_path / "bad.npz"
        save_clips(path, [bad])
        code = main(["drc", str(path)])
        assert code == 1

    def test_squish_command(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        code = main(["squish", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "complexity" in captured
        assert "dx:" in captured

    def test_render_ascii(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        code = main(["render", str(out)])
        assert code == 0
        assert "#" in capsys.readouterr().out

    def test_render_png(self, tmp_path):
        out = tmp_path / "lib.npz"
        main(["generate", "-n", "1", "--out", str(out)])
        png = tmp_path / "clip.png"
        code = main(["render", str(out), "--out", str(png)])
        assert code == 0
        assert png.exists()

    def test_zoo_list(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        code = main(["zoo", "list"])
        assert code == 0
        assert "no artifacts" in capsys.readouterr().out


class TestLibraryWorkflow:
    def test_generate_persists_and_dedups_across_runs(self, tmp_path, capsys):
        lib_dir = tmp_path / "lib"
        out1 = tmp_path / "one.npz"
        code = main([
            "generate", "-n", "4", "--seed", "3", "--out", str(out1),
            "--library-shards", "4", "--library-dir", str(lib_dir),
        ])
        assert code == 0
        assert (lib_dir / "library.json").exists()

        # Second run, same seed: every clip is a duplicate of the snapshot.
        out2 = tmp_path / "two.npz"
        code = main([
            "generate", "-n", "4", "--seed", "3", "--out", str(out2),
            "--library-dir", str(lib_dir),
        ])
        assert code == 1  # nothing new
        assert not out2.exists()
        captured = capsys.readouterr().out
        assert "loaded 4 clips" in captured

        # Different seed grows the snapshot.
        code = main([
            "generate", "-n", "4", "--seed", "9", "--out", str(out2),
            "--library-dir", str(lib_dir),
        ])
        from repro.library import load_library

        store = load_library(lib_dir)
        assert len(store) > 4
        if code == 0:
            from repro.io import load_clips

            clips, _ = load_clips(out2)
            assert len(clips) == len(store) - 4

    def test_generate_keeps_snapshot_shard_layout(self, tmp_path, capsys):
        lib_dir = tmp_path / "lib"
        main([
            "generate", "-n", "3", "--out", str(tmp_path / "x.npz"),
            "--library-shards", "4", "--library-dir", str(lib_dir),
        ])
        # No --library-shards on the second run: layout must survive.
        main([
            "generate", "-n", "3", "--seed", "9",
            "--out", str(tmp_path / "y.npz"), "--library-dir", str(lib_dir),
        ])
        from repro.library import load_library

        assert load_library(lib_dir).num_shards == 4

    def test_generate_rejects_bad_library_dir_before_running(
        self, tmp_path, capsys
    ):
        target = tmp_path / "file.txt"
        target.write_text("not a directory")
        code = main([
            "generate", "-n", "3", "--out", str(tmp_path / "x.npz"),
            "--library-dir", str(target),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_library_info(self, tmp_path, capsys):
        lib_dir = tmp_path / "lib"
        main([
            "generate", "-n", "3", "--out", str(tmp_path / "x.npz"),
            "--library-shards", "2", "--library-dir", str(lib_dir),
        ])
        capsys.readouterr()
        code = main(["library", "info", str(lib_dir)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "3 clips in 2 shards" in captured
        assert "H2=" in captured

    def test_library_info_missing_dir(self, tmp_path, capsys):
        code = main(["library", "info", str(tmp_path / "nope")])
        assert code == 2

    def test_library_merge(self, tmp_path, capsys):
        import numpy as np

        from repro.library import ShardedStore, load_library, save_library

        def clip(seed):
            img = np.zeros((8, 8), dtype=np.uint8)
            img[:, seed % 5 : seed % 5 + 2 + seed % 3] = 1
            return img

        save_library(
            ShardedStore([clip(i) for i in range(6)], num_shards=2),
            tmp_path / "a",
        )
        save_library(
            ShardedStore([clip(i) for i in range(3, 9)], num_shards=3),
            tmp_path / "b",
        )
        code = main([
            "library", "merge", str(tmp_path / "out"),
            str(tmp_path / "a"), str(tmp_path / "b"), "--shards", "4",
        ])
        assert code == 0
        merged = load_library(tmp_path / "out")
        assert merged.num_shards == 4
        assert "duplicates" in capsys.readouterr().out
        combined = {
            tuple(c.flatten()) for c in load_library(tmp_path / "a")
        } | {tuple(c.flatten()) for c in load_library(tmp_path / "b")}
        assert len(merged) == len(combined)
