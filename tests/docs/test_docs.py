"""The docs subsystem stays honest: links resolve, snippets compile.

Runs the same checks as the CI docs job (``tools/check_docs.py``) so a
doc-breaking rename fails tier-1 locally, plus negative tests proving
the checker actually detects each failure class.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_required_pages_exist_and_are_linked(self):
        """Satellite: both docs pages exist and README links them."""
        architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
        serving = REPO_ROOT / "docs" / "SERVING.md"
        assert architecture.exists()
        assert serving.exists()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SERVING.md" in readme

    def test_all_pages_pass_the_checker(self):
        pages = check_docs.doc_pages(REPO_ROOT)
        assert len(pages) >= 3  # README + the two docs pages
        errors = []
        for page in pages:
            errors.extend(check_docs.check_page(page, REPO_ROOT))
        assert errors == []

    def test_serving_doc_covers_the_wire_protocol(self):
        text = (REPO_ROOT / "docs" / "SERVING.md").read_text(encoding="utf-8")
        for event in ("accepted", "chunk", "result", "error", "ping", "stats"):
            assert event in text
        for gauge in ("queue_depth", "pack_fill"):
            assert gauge in text

    def test_architecture_doc_covers_the_contract(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "rng" in text and "spawn" in text
        assert "bit-identical" in text


class TestCheckerCatchesProblems:
    @pytest.fixture()
    def page(self, tmp_path):
        def write(text):
            path = tmp_path / "README.md"
            path.write_text(text, encoding="utf-8")
            return path

        return write

    def test_dead_relative_link(self, page, tmp_path):
        errors = check_docs.check_page(page("[x](missing.md)"), tmp_path)
        assert any("dead link" in e for e in errors)

    def test_dead_anchor(self, page, tmp_path):
        errors = check_docs.check_page(
            page("# Title\n\n[x](#no-such-heading)"), tmp_path
        )
        assert any("dead anchor" in e for e in errors)

    def test_live_anchor_and_link_pass(self, page, tmp_path):
        (tmp_path / "other.md").write_text("# Other Page\n", encoding="utf-8")
        errors = check_docs.check_page(
            page(
                "# My Title\n\n[a](#my-title) [b](other.md#other-page) "
                "[c](https://example.com/nope)"
            ),
            tmp_path,
        )
        assert errors == []

    def test_broken_python_snippet(self, page, tmp_path):
        errors = check_docs.check_page(
            page("```python\ndef broken(:\n```\n"), tmp_path
        )
        assert any("does not compile" in e for e in errors)

    def test_indented_snippet_in_list_compiles(self, page, tmp_path):
        text = "- item:\n\n  ```python\n  x = 1\n  ```\n"
        assert check_docs.check_page(page(text), tmp_path) == []

    def test_unimportable_python_dash_m(self, page, tmp_path):
        errors = check_docs.check_page(
            page("```bash\npython -m no_such_module_zz run\n```\n"), tmp_path
        )
        assert any("unimportable" in e for e in errors)

    def test_dead_submodule_of_live_package_caught(self, page, tmp_path):
        # The full dotted path is resolved, so a renamed submodule fails
        # even while the top-level package still imports.
        errors = check_docs.check_page(
            page("```bash\npython -m repro.gone_submodule_zz\n```\n"),
            tmp_path,
        )
        assert any("unimportable" in e for e in errors)

    def test_live_dotted_module_passes(self, page, tmp_path):
        text = "```bash\nPYTHONPATH=src python -m repro.service.server\n```\n"
        assert check_docs.check_page(page(text), tmp_path) == []

    def test_links_inside_code_blocks_ignored(self, page, tmp_path):
        text = '```python\nx = "[dead](missing.md)"\n```\n'
        # Would be a dead link if scanned as prose; must be ignored.
        assert check_docs.check_page(page(text), tmp_path) == []
