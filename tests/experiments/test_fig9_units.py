"""Unit tests for Figure 9 building blocks (no full sweeps)."""

import numpy as np
import pytest

from repro.experiments.fig9 import SETTINGS, _deck_for, random_topology


class TestRandomTopology:
    def test_shape_and_dtype(self):
        topology = random_topology(12, np.random.default_rng(0))
        assert topology.shape == (12, 12)
        assert topology.dtype == np.bool_

    def test_fill_near_target(self):
        topology = random_topology(24, np.random.default_rng(1), fill_target=0.35)
        assert 0.2 <= topology.mean() <= 0.7

    def test_never_empty(self):
        for seed in range(5):
            topology = random_topology(8, np.random.default_rng(seed))
            assert topology.any()

    def test_deterministic(self):
        a = random_topology(10, np.random.default_rng(3))
        b = random_topology(10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestSweepDecks:
    @pytest.mark.parametrize("setting", SETTINGS)
    def test_decks_build_for_all_settings(self, setting):
        deck = _deck_for(setting, size=20, px_per_cell=4)
        assert deck.grid.width_px == 80
        engine = deck.engine()
        assert engine.name == deck.name

    def test_area_window_scales_with_size(self):
        small = _deck_for("default", 10, 4)
        large = _deck_for("default", 40, 4)
        assert large.area_window_px2[1] > small.area_window_px2[1]

    def test_discrete_setting_keeps_discrete_rule(self):
        deck = _deck_for("complex-discrete", 16, 4)
        assert deck.has_discrete_widths

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError):
            _deck_for("intel", 10, 4)
