"""Unit tests for experiment infrastructure (no heavy runs)."""

import numpy as np
import pytest

from repro.core.pipeline import GenerationStats
from repro.experiments.common import (
    ModelRun,
    format_table,
    load_model_run,
    repro_scale,
    save_model_run,
    scaled,
)


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert repro_scale() == 1.0
        assert scaled(200) == 200

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(200) == 100

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(200) == 1

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            repro_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            repro_scale()


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 2]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text
        assert lines[1].startswith("name")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestModelRunPersistence:
    def make_run(self):
        rng = np.random.default_rng(0)
        clips = [(rng.random((8, 8)) < 0.4).astype(np.uint8) for _ in range(3)]
        raw = [
            (rng.normal(size=(8, 8)).astype(np.float32), clips[0])
            for _ in range(2)
        ]
        stats = [
            GenerationStats(label="init", generated=10, legal=4, admitted=3),
            GenerationStats(label="iter-1", generated=5, legal=2, admitted=2),
        ]
        return ModelRun(name="sd1-ft", stats=stats, library=clips, raw=raw)

    def test_roundtrip(self, tmp_path):
        run = self.make_run()
        path = tmp_path / "run.npz"
        save_model_run(run, path)
        loaded = load_model_run(path)
        assert loaded.name == run.name
        assert len(loaded.stats) == 2
        assert loaded.stats[0].label == "init"
        assert loaded.stats[0].generated == 10
        assert len(loaded.library) == 3
        assert len(loaded.raw) == 2
        np.testing.assert_allclose(loaded.raw[0][0], run.raw[0][0])

    def test_aggregates(self):
        run = self.make_run()
        assert run.total_generated == 15
        assert run.total_legal == 6
        assert run.init_stats.label == "init"

    def test_empty_run_roundtrip(self, tmp_path):
        run = ModelRun(name="x", stats=[GenerationStats(label="init")])
        path = tmp_path / "empty.npz"
        save_model_run(run, path)
        loaded = load_model_run(path)
        assert loaded.library == []
        assert loaded.raw == []
