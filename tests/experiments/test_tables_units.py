"""Unit tests for table formatting (synthetic rows, no heavy runs)."""

from repro.experiments.fig7 import Fig7Series, fig7_trends, format_fig7
from repro.experiments.fig9 import Fig9Curve, Fig9Point, format_fig9
from repro.experiments.table1 import Table1Row, format_table1
from repro.experiments.table2 import Table2Row, format_table2
from repro.experiments.table3 import Table3Row, format_table3


class TestTable1Formatting:
    def test_rows_render(self):
        rows = [
            Table1Row("Starter patterns", 0, 20, 20, 3.68, 4.32),
            Table1Row("CUP", 200, 0, 0, 0.0, 0.0),
            Table1Row("PatternPaint-sd1-ft-init", 200, 23, 17, 4.65, 5.2),
        ]
        text = format_table1(rows)
        assert "Table I" in text
        assert "CUP" in text
        assert "4.32" in text


class TestTable2Formatting:
    def test_rows_render(self):
        rows = [
            Table2Row("PatternPaint (Inpainting)", 0.41),
            Table2Row("PatternPaint (Denoising)", 0.002),
            Table2Row("DiffPattern", 1.4),
        ]
        text = format_table2(rows)
        assert "Runtime" in text
        assert "DiffPattern" in text


class TestTable3Formatting:
    def test_rows_render(self):
        rows = [
            Table3Row("PatternPaint-sd1-ft", 11.7, 1.0, 0.0),
            Table3Row("Average", 8.4, 0.9, 0.0),
        ]
        text = format_table3(rows)
        assert "Template" in text
        assert "Average" in text


class TestFig7:
    def make_series(self, name, h2_last=6.0):
        return Fig7Series(
            name=name,
            legal=[10, 20, 30],
            unique=[8, 15, 21],
            h1=[3.0, 2.9, 2.8],
            h2=[4.0, 5.0, h2_last],
        )

    def test_format(self):
        text = format_fig7([self.make_series("sd1-ft")])
        assert "Figure 7 panel: H2" in text
        assert "iter-2" in text

    def test_trends(self):
        series = [
            self.make_series("sd1-base", h2_last=5.5),
            self.make_series("sd1-ft", h2_last=6.5),
        ]
        trends = fig7_trends(series)
        assert trends["h2_grows_with_iterations"]
        assert trends["unique_grows_with_iterations"]
        assert trends["finetuned_h2_beats_base"]

    def test_empty(self):
        assert "no data" in format_fig7([])


class TestFig9Formatting:
    def test_format(self):
        curves = [
            Fig9Curve(
                setting=s,
                points=[Fig9Point(10, 0.1, 1.0), Fig9Point(20, 0.5, 0.5)],
            )
            for s in ("default", "complex", "complex-discrete")
        ]
        denoise = Fig9Curve(
            setting="patternpaint-denoise",
            points=[Fig9Point(10, 0.001, 1.0), Fig9Point(20, 0.002, 1.0)],
        )
        text = format_fig9(curves, denoise)
        assert "runtime" in text
        assert "success rate" in text
        assert "complex-discrete" in text
