"""Unit tests for the rule-based track generator."""

import numpy as np
import pytest

from repro.baselines import (
    TrackGeneratorConfig,
    TrackPatternGenerator,
    generate_library,
    pretrain_node_config,
    starter_set,
)
from repro.drc import advanced_deck
from repro.geometry import Grid, density


@pytest.fixture
def deck():
    return advanced_deck(Grid(nm_per_px=16.0, width_px=32, height_px=32))


class TestGeneratorContract:
    def test_all_output_is_clean(self, deck):
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        engine = deck.engine()
        clips = generator.sample_many(20, np.random.default_rng(0))
        assert all(engine.is_clean(c) for c in clips)

    def test_deterministic_given_seed(self, deck):
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        a = generator.sample_many(5, np.random.default_rng(42))
        b = generator.sample_many(5, np.random.default_rng(42))
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a, clip_b)

    def test_output_shape_matches_grid(self, deck):
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        clip = generator.sample(np.random.default_rng(0))
        assert clip.shape == (32, 32)
        assert clip.dtype == np.uint8

    def test_output_is_nonempty_with_reasonable_density(self, deck):
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        clips = generator.sample_many(20, np.random.default_rng(1))
        densities = [density(c) for c in clips]
        assert min(densities) > 0.05
        assert max(densities) < 0.8

    def test_variation_across_samples(self, deck):
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        clips = generator.sample_many(10, np.random.default_rng(2))
        distinct = {c.tobytes() for c in clips}
        assert len(distinct) >= 8

    def test_narrow_grid_rejected(self):
        tiny = advanced_deck(Grid(nm_per_px=16.0, width_px=8, height_px=32))
        with pytest.raises(ValueError, match="too small"):
            TrackPatternGenerator(TrackGeneratorConfig(deck=tiny))


class TestConvenienceEntryPoints:
    def test_generate_library_count(self, deck):
        clips = generate_library(deck, 7, np.random.default_rng(0))
        assert len(clips) == 7

    def test_starter_set_default(self):
        starters = starter_set(n=5, seed=1)
        assert len(starters) == 5
        assert starters[0].shape == (64, 64)

    def test_starter_set_reproducible(self):
        a = starter_set(n=3, seed=9)
        b = starter_set(n=3, seed=9)
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a, clip_b)

    def test_pretrain_node_differs_from_target(self):
        node = pretrain_node_config()
        target = advanced_deck()
        assert node.track_pitch_px != target.track_pitch_px
        assert set(node.allowed_widths_px) != set(target.allowed_widths_px)


class TestConnectors:
    def test_connectors_appear_with_high_probability_setting(self, deck):
        from dataclasses import replace

        config = TrackGeneratorConfig(deck=deck, p_connector=1.0, max_connectors=3)
        generator = TrackPatternGenerator(config)
        clips = generator.sample_many(20, np.random.default_rng(3))
        # A connector merges two tracks: some clip must contain a horizontal
        # run wider than the track pitch.
        from repro.drc import run_table

        has_wide = any(
            (run_table(c, "h").lengths >= deck.track_pitch_px).any() for c in clips
        )
        assert has_wide

    def test_no_connectors_when_disabled(self, deck):
        config = TrackGeneratorConfig(deck=deck, p_connector=0.0)
        generator = TrackPatternGenerator(config)
        clips = generator.sample_many(10, np.random.default_rng(3))
        from repro.drc import run_table

        assert all(
            (run_table(c, "h").lengths < deck.track_pitch_px).all() for c in clips
        )
