"""Unit tests for the CUP VAE baseline (tiny configs)."""

import numpy as np
import pytest

from repro.baselines import CupConfig, CupGenerator, CupModel, SolverSettings
from repro.drc import basic_deck
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


def tiny_model():
    return CupModel(CupConfig(image_size=16, latent_dim=8, base_channels=8, seed=0))


def tiny_dataset(n=16, size=16, seed=0):
    rng = np.random.default_rng(seed)
    clips = np.zeros((n, 1, size, size), dtype=np.float32)
    for i in range(n):
        offset = int(rng.integers(2, size - 5))
        clips[i, 0, :, offset : offset + 3] = 1.0
    return clips


class TestCupModel:
    def test_forward_shapes(self):
        model = tiny_model()
        rng = np.random.default_rng(0)
        logits, mu, logvar = model.forward(tiny_dataset(4), rng)
        assert logits.shape == (4, 1, 16, 16)
        assert mu.shape == (4, 8)
        assert logvar.shape == (4, 8)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CupConfig(image_size=18)

    def test_loss_decreases_when_overfitting(self):
        model = tiny_model()
        data = tiny_dataset(8)
        rng = np.random.default_rng(0)
        losses = model.fit(data, steps=80, batch_size=8, lr=2e-3, rng=rng)
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_kl_term_is_finite_and_positive(self):
        model = tiny_model()
        rng = np.random.default_rng(0)
        _, _, kl = model.loss_and_backward(tiny_dataset(4), rng)
        assert np.isfinite(kl)
        assert kl >= 0

    def test_sample_canvases(self):
        model = tiny_model()
        canvases = model.sample_canvases(3, np.random.default_rng(0))
        assert len(canvases) == 3
        assert canvases[0].shape == (16, 16)
        assert canvases[0].dtype == np.uint8


class TestCupGenerator:
    def test_generate_returns_only_clean_clips(self):
        deck = basic_deck(GRID)
        model = CupModel(CupConfig(image_size=32, latent_dim=8, base_channels=8))
        generator = CupGenerator(
            model, deck, SolverSettings(max_iter=40, discrete_restarts=0)
        )
        legal, attempts, seconds = generator.generate(4, np.random.default_rng(0))
        assert attempts == 4
        assert seconds >= 0
        engine = deck.engine()
        assert all(engine.is_clean(clip) for clip in legal)
