"""Unit tests for the DiffPattern discrete-diffusion baseline."""

import numpy as np
import pytest

from repro.baselines import (
    DiffPatternGenerator,
    DiscreteDiffusion,
    DiscreteDiffusionConfig,
    SolverSettings,
)
from repro.drc import basic_deck
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


def tiny_diffusion(size=16):
    unet = TimeUnet(
        UNetConfig(
            image_size=size, base_channels=8, channel_mults=(1,),
            num_res_blocks=1, groups=4, time_dim=8, attention=False, seed=0,
        )
    )
    return DiscreteDiffusion(unet, DiscreteDiffusionConfig(num_steps=10))


def tiny_canvases(n=8, size=16, seed=0):
    rng = np.random.default_rng(seed)
    data = np.zeros((n, 1, size, size), dtype=np.uint8)
    for i in range(n):
        offset = int(rng.integers(2, size - 5))
        data[i, 0, :, offset : offset + 3] = 1
    return data


class TestForwardProcess:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DiscreteDiffusionConfig(num_steps=1)
        with pytest.raises(ValueError):
            DiscreteDiffusionConfig(beta_start=0.5, beta_end=0.2)

    def test_keep_prob_decreases_with_t(self):
        diffusion = tiny_diffusion()
        probs = diffusion.keep_prob(np.arange(10))
        assert (np.diff(probs) < 0).all()
        assert probs[0] > 0.9
        assert probs[-1] > 0.5  # never worse than random

    def test_q_sample_preserves_binaryness(self):
        diffusion = tiny_diffusion()
        x0 = tiny_canvases()
        xt = diffusion.q_sample(x0, np.full(8, 5), np.random.default_rng(0))
        assert set(np.unique(xt)).issubset({0, 1})

    def test_q_sample_flip_rate_matches_schedule(self):
        diffusion = tiny_diffusion()
        x0 = np.zeros((200, 1, 16, 16), dtype=np.uint8)
        t = np.full(200, 9)
        xt = diffusion.q_sample(x0, t, np.random.default_rng(0))
        flip_rate = xt.mean()
        expected = 1.0 - diffusion.keep_prob(9)
        assert flip_rate == pytest.approx(expected, abs=0.02)


class TestTrainingAndSampling:
    def test_loss_decreases(self):
        diffusion = tiny_diffusion()
        data = tiny_canvases(8)
        losses = diffusion.fit(
            data, steps=50, batch_size=8, lr=3e-3, rng=np.random.default_rng(0)
        )
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_sample_shapes_and_binaryness(self):
        diffusion = tiny_diffusion()
        canvases = diffusion.sample(3, np.random.default_rng(0))
        assert len(canvases) == 3
        assert canvases[0].shape == (16, 16)
        assert set(np.unique(np.stack(canvases))).issubset({0, 1})

    def test_posterior_probabilities_valid(self):
        diffusion = tiny_diffusion()
        xt = (np.random.default_rng(0).random((2, 1, 16, 16)) < 0.5).astype(np.uint8)
        p1 = np.full_like(xt, 0.7, dtype=np.float64)
        out = diffusion._posterior_sample(xt, p1, 5, np.random.default_rng(0))
        assert set(np.unique(out)).issubset({0, 1})


class TestDiffPatternGenerator:
    def test_generate_returns_only_clean_clips(self):
        deck = basic_deck(GRID)
        unet = TimeUnet(
            UNetConfig(
                image_size=32, base_channels=8, channel_mults=(1,),
                num_res_blocks=1, groups=4, time_dim=8, attention=False, seed=1,
            )
        )
        diffusion = DiscreteDiffusion(unet, DiscreteDiffusionConfig(num_steps=6))
        generator = DiffPatternGenerator(
            diffusion, deck, SolverSettings(max_iter=40, discrete_restarts=0)
        )
        legal, attempts, _ = generator.generate(3, np.random.default_rng(0))
        assert attempts == 3
        engine = deck.engine()
        assert all(engine.is_clean(clip) for clip in legal)
