"""Unit tests for the nonlinear legalization solver."""

import numpy as np
import pytest

from repro.baselines import SolverSettings, SquishLegalizer
from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.baselines.solver import DeckParams
from repro.drc import advanced_deck, basic_deck, complex_deck
from repro.geometry import Grid, squish

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


def topology_from_generator(deck, seed=0):
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    clip = generator.sample(np.random.default_rng(seed))
    return squish(clip).topology


class TestDeckParams:
    def test_basic_deck_extraction(self):
        p = DeckParams.from_deck(basic_deck(GRID))
        assert p.min_w_h == 3
        assert p.s_lo_h == 3
        assert p.area_lo == 12
        assert p.discrete_widths == ()

    def test_advanced_deck_extraction(self):
        p = DeckParams.from_deck(advanced_deck(GRID))
        assert p.discrete_widths == (3, 5)
        assert p.connector_min == 8
        # The relaxation must keep the loosest window so no feasible
        # geometry is cut off before the DRC validation step.
        assert p.s_lo_h == 4
        assert p.s_hi_h == 14

    def test_complex_deck_has_spacing_caps(self):
        p = DeckParams.from_deck(complex_deck(GRID))
        assert np.isfinite(p.s_hi_h)
        assert p.e2e_lo == 4


class TestLegalization:
    def test_legalizes_feasible_basic_topologies(self):
        deck = basic_deck(GRID)
        legalizer = SquishLegalizer(deck)
        successes = 0
        for seed in range(6):
            topology = topology_from_generator(deck, seed)
            result = legalizer.legalize(
                topology, width_px=32, height_px=32, rng=np.random.default_rng(seed)
            )
            successes += result.success
            if result.success:
                assert deck.engine().is_clean(result.clip)
        assert successes >= 3

    def test_success_means_drc_clean(self):
        deck = advanced_deck(GRID)
        legalizer = SquishLegalizer(deck)
        engine = deck.engine()
        for seed in range(4):
            topology = topology_from_generator(deck, seed)
            result = legalizer.legalize(
                topology, width_px=32, height_px=32, rng=np.random.default_rng(seed)
            )
            if result.success:
                assert engine.is_clean(result.clip)

    def test_empty_topology_rejected(self):
        legalizer = SquishLegalizer(basic_deck(GRID))
        result = legalizer.legalize(np.zeros((3, 3), dtype=bool))
        assert not result.success
        assert "empty" in result.message

    def test_oversized_topology_rejected(self):
        legalizer = SquishLegalizer(basic_deck(GRID))
        topology = np.ones((40, 40), dtype=bool)
        result = legalizer.legalize(topology, width_px=32, height_px=32)
        assert not result.success
        assert "cannot fit" in result.message

    def test_runtime_is_recorded(self):
        deck = basic_deck(GRID)
        legalizer = SquishLegalizer(deck)
        topology = topology_from_generator(deck, 0)
        result = legalizer.legalize(topology, width_px=32, height_px=32)
        assert result.runtime_s > 0

    def test_discrete_restarts_help_on_advanced_deck(self):
        deck = advanced_deck(GRID)
        naive = SquishLegalizer(deck, SolverSettings(discrete_restarts=0))
        improved = SquishLegalizer(deck, SolverSettings(discrete_restarts=4))
        naive_ok = 0
        improved_ok = 0
        for seed in range(8):
            topology = topology_from_generator(deck, seed)
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            naive_ok += naive.legalize(
                topology, width_px=32, height_px=32, rng=rng_a
            ).success
            improved_ok += improved.legalize(
                topology, width_px=32, height_px=32, rng=rng_b
            ).success
        assert improved_ok >= naive_ok


class TestRounding:
    def test_round_axis_repairs_total(self):
        values = np.array([3.4, 3.4, 3.4, 3.4])
        rounded = SquishLegalizer._round_axis(values, 14)
        assert rounded.sum() == 14
        assert (rounded >= 1).all()

    def test_round_axis_impossible_total(self):
        values = np.array([1.0, 1.0])
        assert SquishLegalizer._round_axis(values, 1) is None

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(max_iter=0)
        with pytest.raises(ValueError):
            SolverSettings(discrete_restarts=-1)
