"""Unit tests for H1/H2 entropy metrics."""

import numpy as np
import pytest

from repro.metrics import class_entropy, entropy_from_counts, h1_entropy, h2_entropy


def wire(offset, width=3, size=16):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, offset : offset + width] = 1
    return img


class TestEntropyFromCounts:
    def test_uniform_distribution_is_log2_n(self):
        assert entropy_from_counts([5, 5, 5, 5]) == pytest.approx(2.0)

    def test_single_class_is_zero(self):
        assert entropy_from_counts([42]) == 0.0

    def test_empty_and_zero_counts(self):
        assert entropy_from_counts([]) == 0.0
        assert entropy_from_counts([0, 0]) == 0.0

    def test_zero_counts_ignored(self):
        assert entropy_from_counts([3, 0, 3]) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            entropy_from_counts([1, -1])

    def test_skewed_less_than_uniform(self):
        assert entropy_from_counts([9, 1]) < entropy_from_counts([5, 5])


class TestH1H2:
    def test_starter_style_library_h2_is_log2_n(self):
        # n all-distinct geometry classes -> H2 = log2(n), the paper's
        # starter-row value (20 starters -> 4.32).
        clips = [wire(offset) for offset in range(1, 9)]
        assert h2_entropy(clips) == pytest.approx(3.0)

    def test_h1_collapses_same_topology_classes(self):
        # Same complexity (one wire), different offsets: H1 sees one class.
        clips = [wire(offset) for offset in range(1, 9)]
        assert h1_entropy(clips) == 0.0

    def test_h2_distinguishes_widths_h1_does_not(self):
        clips = [wire(4, width=3), wire(4, width=5)]
        assert h1_entropy(clips) == 0.0
        assert h2_entropy(clips) == pytest.approx(1.0)

    def test_h1_distinguishes_topology_complexity(self):
        two_wires = np.zeros((16, 16), dtype=np.uint8)
        two_wires[:, 2:5] = 1
        two_wires[:, 10:13] = 1
        clips = [wire(2), two_wires]
        assert h1_entropy(clips) == pytest.approx(1.0)

    def test_empty_library(self):
        assert h1_entropy([]) == 0.0
        assert h2_entropy([]) == 0.0

    def test_class_entropy_custom_key(self):
        clips = [wire(1), wire(2), wire(3)]
        assert class_entropy(clips, lambda c: 0) == 0.0
