"""Unit tests for uniqueness, library summaries and legality metrics."""

import numpy as np
import pytest

from repro.drc import DrcEngine, MinWidthRule, NonEmptyRule
from repro.metrics import (
    count_legal,
    legality_rate,
    split_legal,
    success_percent,
    summarize_library,
    unique_clips,
    unique_count,
)


def wire(width, size=12):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, 2 : 2 + width] = 1
    return img


@pytest.fixture
def engine():
    return DrcEngine(name="t", rules=(NonEmptyRule(), MinWidthRule("h", 3)))


class TestUniqueness:
    def test_unique_count(self):
        clips = [wire(3), wire(3), wire(4)]
        assert unique_count(clips) == 2

    def test_unique_clips_keep_first_occurrence_order(self):
        clips = [wire(4), wire(3), wire(4)]
        kept = unique_clips(clips)
        assert len(kept) == 2
        np.testing.assert_array_equal(kept[0], wire(4))

    def test_empty(self):
        assert unique_count([]) == 0
        assert unique_clips([]) == []


class TestSummary:
    def test_summary_fields(self):
        clips = [wire(3), wire(4), wire(4)]
        summary = summarize_library(clips)
        assert summary.count == 3
        assert summary.unique == 2
        assert summary.h2 > 0
        assert 0 < summary.mean_density < 1
        assert len(summary.row()) == 5

    def test_empty_summary(self):
        summary = summarize_library([])
        assert summary.count == 0
        assert summary.unique == 0


class TestLegality:
    def test_count_and_rate(self, engine):
        clips = [wire(3), wire(2), wire(5)]
        assert count_legal(clips, engine) == 2
        assert legality_rate(clips, engine) == pytest.approx(2 / 3)
        assert legality_rate([], engine) == 0.0

    def test_success_percent_is_table3_units(self, engine):
        clips = [wire(3), wire(2)]
        assert success_percent(clips, engine) == pytest.approx(50.0)

    def test_split_legal(self, engine):
        clips = [wire(3), wire(2), wire(5)]
        legal, illegal = split_legal(clips, engine)
        assert len(legal) == 2
        assert len(illegal) == 1
        np.testing.assert_array_equal(illegal[0], wire(2))
