"""Hash-keyed DRC caching: check_batch, legal_mask, shared stores,
disk persistence."""

import json

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.drc import advanced_deck, basic_deck
from repro.drc.cache import (
    DrcCache,
    clear_shared_caches,
    load_shared_caches,
    save_shared_caches,
)
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def clips(deck):
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    good = generator.sample_many(4, np.random.default_rng(0))
    bad = np.zeros((32, 32), dtype=np.uint8)
    bad[:, 4:6] = 1  # width 2: violates the advanced deck
    return good + [bad]


class TestCheckBatch:
    def test_matches_is_clean(self, deck, clips):
        engine = deck.engine()
        mask = engine.check_batch(clips)
        assert list(mask) == [engine.is_clean(c) for c in clips]

    def test_duplicates_checked_once(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        mask = engine.check_batch(list(clips) + list(clips))
        np.testing.assert_array_equal(mask[: len(clips)], mask[len(clips) :])
        # One rule sweep per unique clip, regardless of repetition.
        assert engine.cache.misses == len(clips)

    def test_second_call_all_hits(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        first = engine.check_batch(clips)
        hits_before = engine.cache.hits
        second = engine.check_batch(clips)
        np.testing.assert_array_equal(first, second)
        assert engine.cache.hits == hits_before + len(clips)

    def test_uncached_bypass(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        mask = engine.check_batch(clips, use_cache=False)
        assert engine.cache.misses == 0
        assert list(mask) == [engine.is_clean(c) for c in clips]

    def test_pooled_sweep_matches_serial(self, deck, clips):
        engine = deck.engine()
        serial = engine.check_batch(clips, use_cache=False)
        threaded = engine.check_batch(clips, use_cache=False, jobs=3)
        np.testing.assert_array_equal(serial, threaded)

    def test_empty_batch(self, deck):
        assert deck.engine().check_batch([]).size == 0


class TestSharedStore:
    def test_equal_engines_share_results(self, deck, clips):
        clear_shared_caches()
        first = deck.engine()
        first.check_batch(clips)
        # A *fresh* engine over the same deck starts warm.
        second = advanced_deck(GRID).engine()
        second.check_batch(clips)
        assert second.cache.hits == len(clips)
        assert second.cache.misses == 0


class TestLegacyEntryPoints:
    def test_legal_mask_and_rate(self, deck, clips):
        engine = deck.engine()
        mask = engine.legal_mask(clips)
        assert mask.dtype == bool
        assert engine.legality_rate(clips) == pytest.approx(mask.mean())
        assert engine.legality_rate([]) == 0.0

    def test_filter_clean(self, deck, clips):
        engine = deck.engine()
        clean = engine.filter_clean(clips)
        assert len(clean) == int(engine.legal_mask(clips).sum())


class TestDrcCacheUnit:
    def test_eviction_bound(self):
        cache = DrcCache(maxsize=2)
        cache.put("a", True)
        cache.put("b", False)
        cache.put("c", True)
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted (FIFO)
        assert cache.get("c") is True

    def test_pickle_resets_store(self):
        import pickle

        cache = DrcCache(maxsize=10)
        cache.put("a", True)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.get("a") is None

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            DrcCache(maxsize=0)


class TestDiskPersistence:
    """Satellite: opt-in disk-backed DRC cache across runs."""

    def _warm(self, deck, clips):
        engine = deck.engine()
        engine.check_batch(clips)
        return engine

    def test_save_then_load_restores_verdicts(self, deck, clips, tmp_path):
        clear_shared_caches()
        reference = list(self._warm(deck, clips).check_batch(clips))
        assert save_shared_caches(tmp_path) == 1
        files = list(tmp_path.glob("drc-*.json"))
        assert len(files) == 1

        unique = len({DrcCache.key(clip) for clip in clips})
        clear_shared_caches()  # simulate a fresh process
        assert load_shared_caches(tmp_path) == unique
        engine = deck.engine()
        legal = engine.check_batch(clips)
        assert list(legal) == reference
        # Every verdict came from disk, none were recomputed.
        assert engine.cache.hits == unique
        assert engine.cache.misses == 0
        clear_shared_caches()

    def test_stale_file_for_changed_deck_is_ignored(self, deck, clips, tmp_path):
        # Persist the advanced deck's store, then rewrite the file
        # claiming a different fingerprint: a cache whose recorded deck
        # no longer matches its filename must not poison anything.
        clear_shared_caches()
        self._warm(deck, clips)
        save_shared_caches(tmp_path)
        path = next(tmp_path.glob("drc-*.json"))
        payload = json.loads(path.read_text())
        payload["fingerprint"][1] = "tampered-rules"
        path.write_text(json.dumps(payload))

        clear_shared_caches()
        assert load_shared_caches(tmp_path) == 0
        clear_shared_caches()

    def test_corrupt_and_wrong_format_files_are_skipped(self, tmp_path):
        clear_shared_caches()
        (tmp_path / "drc-deadbeefdeadbeef.json").write_text("{not json")
        (tmp_path / "drc-cafecafecafecafe.json").write_text(
            json.dumps({"format": 99, "fingerprint": ["x", "y"], "entries": {}})
        )
        assert load_shared_caches(tmp_path) == 0

    def test_missing_directory_loads_nothing(self, tmp_path):
        assert load_shared_caches(tmp_path / "absent") == 0

    def test_decks_persist_independently(self, deck, clips, tmp_path):
        clear_shared_caches()
        self._warm(deck, clips)
        other = basic_deck(GRID)
        self._warm(other, clips)
        assert save_shared_caches(tmp_path) == 2
        unique = len({DrcCache.key(clip) for clip in clips})
        clear_shared_caches()
        assert load_shared_caches(tmp_path) == 2 * unique
        # The warm store means zero misses for both decks.
        for warmed in (deck, other):
            engine = warmed.engine()
            engine.check_batch(clips)
            assert engine.cache.misses == 0
        clear_shared_caches()

    def test_in_process_entries_win_over_disk(self, deck, clips, tmp_path):
        clear_shared_caches()
        self._warm(deck, clips)
        save_shared_caches(tmp_path)
        # Tamper the on-disk verdicts; live entries must shadow them.
        path = next(tmp_path.glob("drc-*.json"))
        payload = json.loads(path.read_text())
        flipped = {k: (not v) for k, v in payload["entries"].items()}
        payload["entries"] = flipped
        path.write_text(json.dumps(payload))
        assert load_shared_caches(tmp_path) == 0  # nothing new to add
        legal = deck.engine().check_batch(clips)
        clear_shared_caches()
        fresh = deck.engine().check_batch(clips)
        assert list(legal) == list(fresh)
        clear_shared_caches()
