"""Hash-keyed DRC caching: check_batch, legal_mask, shared stores."""

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.drc import advanced_deck
from repro.drc.cache import DrcCache, clear_shared_caches
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def clips(deck):
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    good = generator.sample_many(4, np.random.default_rng(0))
    bad = np.zeros((32, 32), dtype=np.uint8)
    bad[:, 4:6] = 1  # width 2: violates the advanced deck
    return good + [bad]


class TestCheckBatch:
    def test_matches_is_clean(self, deck, clips):
        engine = deck.engine()
        mask = engine.check_batch(clips)
        assert list(mask) == [engine.is_clean(c) for c in clips]

    def test_duplicates_checked_once(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        mask = engine.check_batch(list(clips) + list(clips))
        np.testing.assert_array_equal(mask[: len(clips)], mask[len(clips) :])
        # One rule sweep per unique clip, regardless of repetition.
        assert engine.cache.misses == len(clips)

    def test_second_call_all_hits(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        first = engine.check_batch(clips)
        hits_before = engine.cache.hits
        second = engine.check_batch(clips)
        np.testing.assert_array_equal(first, second)
        assert engine.cache.hits == hits_before + len(clips)

    def test_uncached_bypass(self, deck, clips):
        engine = deck.engine()
        engine.cache.clear()
        mask = engine.check_batch(clips, use_cache=False)
        assert engine.cache.misses == 0
        assert list(mask) == [engine.is_clean(c) for c in clips]

    def test_pooled_sweep_matches_serial(self, deck, clips):
        engine = deck.engine()
        serial = engine.check_batch(clips, use_cache=False)
        threaded = engine.check_batch(clips, use_cache=False, jobs=3)
        np.testing.assert_array_equal(serial, threaded)

    def test_empty_batch(self, deck):
        assert deck.engine().check_batch([]).size == 0


class TestSharedStore:
    def test_equal_engines_share_results(self, deck, clips):
        clear_shared_caches()
        first = deck.engine()
        first.check_batch(clips)
        # A *fresh* engine over the same deck starts warm.
        second = advanced_deck(GRID).engine()
        second.check_batch(clips)
        assert second.cache.hits == len(clips)
        assert second.cache.misses == 0


class TestLegacyEntryPoints:
    def test_legal_mask_and_rate(self, deck, clips):
        engine = deck.engine()
        mask = engine.legal_mask(clips)
        assert mask.dtype == bool
        assert engine.legality_rate(clips) == pytest.approx(mask.mean())
        assert engine.legality_rate([]) == 0.0

    def test_filter_clean(self, deck, clips):
        engine = deck.engine()
        clean = engine.filter_clean(clips)
        assert len(clean) == int(engine.legal_mask(clips).sum())


class TestDrcCacheUnit:
    def test_eviction_bound(self):
        cache = DrcCache(maxsize=2)
        cache.put("a", True)
        cache.put("b", False)
        cache.put("c", True)
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted (FIFO)
        assert cache.get("c") is True

    def test_pickle_resets_store(self):
        import pickle

        cache = DrcCache(maxsize=10)
        cache.put("a", True)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.get("a") is None

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            DrcCache(maxsize=0)
