"""Unit tests for the rule decks + cross-validation with the generator."""

import numpy as np
import pytest

from repro.baselines.rule_based import (
    TrackGeneratorConfig,
    TrackPatternGenerator,
    pretrain_node_config,
)
from repro.drc import advanced_deck, basic_deck, complex_deck, deck_by_name
from repro.geometry import Grid


class TestDeckProperties:
    def test_deck_by_name(self):
        assert deck_by_name("basic").name == "basic"
        assert deck_by_name("complex").name == "complex"
        assert deck_by_name("advanced").name == "advanced"

    def test_unknown_deck_rejected(self):
        with pytest.raises(ValueError, match="unknown deck"):
            deck_by_name("intel18a")

    def test_advanced_deck_has_discrete_widths(self):
        assert advanced_deck().has_discrete_widths
        assert not basic_deck().has_discrete_widths
        assert not complex_deck().has_discrete_widths

    def test_spacing_upper_bounds_flag(self):
        assert advanced_deck().has_spacing_upper_bounds
        assert complex_deck().has_spacing_upper_bounds
        assert not basic_deck().has_spacing_upper_bounds

    def test_width_and_spacing_summaries(self):
        deck = advanced_deck()
        assert deck.min_width_px == 3
        assert deck.max_width_px == 5
        assert deck.min_spacing_px == 4
        assert deck.max_spacing_px == 14

    def test_engine_builds(self):
        for deck in (basic_deck(), complex_deck(), advanced_deck()):
            engine = deck.engine()
            assert engine.name == deck.name


class TestAdvancedDeckSemantics:
    """The discrete/width-dependent behaviours Figure 3 illustrates."""

    @pytest.fixture
    def engine(self):
        return advanced_deck(Grid(nm_per_px=16.0, width_px=32, height_px=32)).engine()

    @staticmethod
    def tracks(widths, height=32, width=32, pitch=8):
        img = np.zeros((height, width), dtype=np.uint8)
        for k, w in enumerate(widths):
            if w is None:
                continue
            center = pitch // 2 + k * pitch
            x0 = center - w // 2
            img[:, x0 : x0 + w] = 1
        return img

    def test_full_tracks_with_legal_widths_pass(self, engine):
        assert engine.is_clean(self.tracks([3, 3, 5, 3]))

    def test_adjacent_5_5_tracks_fail(self, engine):
        report = engine.check(self.tracks([3, 5, 5, 3]))
        assert any(v.rule == "Mx.S.WDEP.H" for v in report.violations)

    def test_width_4_track_fails_discrete_rule(self, engine):
        report = engine.check(self.tracks([3, 4, 3, 3]))
        assert any(v.rule == "Mx.W.DISCRETE.H" for v in report.violations)

    def test_single_skipped_track_is_legal(self, engine):
        assert engine.is_clean(self.tracks([3, None, 3, 3]))

    def test_two_skipped_tracks_violate_max_spacing(self, engine):
        report = engine.check(self.tracks([3, None, None, 3]))
        assert any(v.rule == "Mx.S.WDEP.H" for v in report.violations)

    def test_empty_clip_fails_nonempty(self, engine):
        report = engine.check(np.zeros((32, 32), dtype=np.uint8))
        assert any(v.rule == "Mx.NONEMPTY" for v in report.violations)


class TestGeneratorDeckCrossValidation:
    """Everything the generator emits must pass its own deck's DRC."""

    @pytest.mark.parametrize(
        "make_deck", [basic_deck, complex_deck, advanced_deck, pretrain_node_config]
    )
    def test_generator_output_is_clean(self, make_deck):
        grid = Grid(nm_per_px=16.0, width_px=32, height_px=32)
        deck = make_deck(grid)
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        engine = deck.engine()
        rng = np.random.default_rng(5)
        clips = generator.sample_many(15, rng)
        assert all(engine.is_clean(clip) for clip in clips)
