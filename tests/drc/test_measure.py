"""Unit + property tests for the vectorized measurement kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.drc import ClipMeasurements, gap_table, run_table
from repro.geometry import gaps_in_line, runs_in_line


@st.composite
def clips(draw, max_side=14):
    h = draw(st.integers(1, max_side))
    w = draw(st.integers(1, max_side))
    return draw(
        hnp.arrays(dtype=np.uint8, shape=(h, w), elements=st.integers(0, 1))
    )


class TestRunTable:
    @given(clips())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_line_extraction_h(self, img):
        table = run_table(img, "h")
        expected = []
        for y in range(img.shape[0]):
            expected.extend((y, a, b) for a, b in runs_in_line(img[y]))
        got = list(zip(table.lines, table.starts, table.stops))
        assert [(int(a), int(b), int(c)) for a, b, c in got] == expected

    @given(clips())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_line_extraction_v(self, img):
        table = run_table(img, "v")
        expected = []
        for x in range(img.shape[1]):
            expected.extend((x, a, b) for a, b in runs_in_line(img[:, x]))
        got = [(int(a), int(b), int(c)) for a, b, c in
               zip(table.lines, table.starts, table.stops)]
        assert got == expected

    def test_lengths_and_anchor(self):
        img = np.array([[1, 1, 0, 1]], dtype=np.uint8)
        table = run_table(img, "h")
        np.testing.assert_array_equal(table.lengths, [2, 1])
        assert table.anchor(0) == (0, 0)
        assert table.anchor(1) == (0, 3)

    def test_vertical_anchor_is_yx(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        img[1:3, 2] = 1
        table = run_table(img, "v")
        assert table.anchor(0) == (1, 2)

    def test_invalid_axis(self):
        import pytest

        with pytest.raises(ValueError):
            run_table(np.zeros((2, 2)), "d")


class TestGapTable:
    @given(clips())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_line_gaps(self, img):
        table = gap_table(img, "h")
        expected = []
        for y in range(img.shape[0]):
            expected.extend((y, a, b) for a, b in gaps_in_line(img[y]))
        got = [(int(a), int(b), int(c)) for a, b, c in
               zip(table.lines, table.starts, table.stops)]
        assert got == expected

    def test_flanking_widths(self):
        img = np.array([[1, 1, 1, 0, 0, 1]], dtype=np.uint8)
        table = gap_table(img, "h")
        assert len(table) == 1
        assert int(table.left_lengths[0]) == 3
        assert int(table.right_lengths[0]) == 1
        assert int(table.lengths[0]) == 2

    def test_no_gaps_in_single_run(self):
        assert len(gap_table(np.array([[0, 1, 1, 0]]), "h")) == 0

    def test_empty_clip(self):
        assert len(gap_table(np.zeros((3, 3)), "h")) == 0


class TestClipMeasurements:
    def test_caches_are_consistent_views(self):
        rng = np.random.default_rng(1)
        img = (rng.random((8, 8)) < 0.4).astype(np.uint8)
        m = ClipMeasurements(img)
        assert m.runs("h") is m.h_runs
        assert m.gaps("v") is m.v_gaps
        assert m.shape == (8, 8)

    def test_is_empty(self):
        assert ClipMeasurements(np.zeros((4, 4))).is_empty
        assert not ClipMeasurements(np.ones((4, 4))).is_empty

    def test_rejects_empty_array(self):
        import pytest

        with pytest.raises(ValueError):
            ClipMeasurements(np.zeros((0, 4)))

    def test_areas(self):
        img = np.zeros((6, 6), dtype=np.uint8)
        img[0:3, 0:2] = 1
        m = ClipMeasurements(img)
        np.testing.assert_array_equal(m.areas, [6])
