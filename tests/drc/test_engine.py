"""Unit tests for the DRC engine."""

import numpy as np
import pytest

from repro.drc import DrcEngine, MinSpacingRule, MinWidthRule, NonEmptyRule


def wire(width, gap=None, height=8):
    if gap is None:
        img = np.zeros((height, width + 4), dtype=np.uint8)
        img[:, 2 : 2 + width] = 1
        return img
    img = np.zeros((height, 2 * width + gap + 4), dtype=np.uint8)
    img[:, 2 : 2 + width] = 1
    img[:, 2 + width + gap : 2 + 2 * width + gap] = 1
    return img


@pytest.fixture
def engine():
    return DrcEngine(
        name="test",
        rules=(NonEmptyRule(), MinWidthRule("h", 3), MinSpacingRule("h", 3)),
    )


class TestEngineBasics:
    def test_requires_rules(self):
        with pytest.raises(ValueError):
            DrcEngine(name="empty", rules=())

    def test_clean_clip(self, engine):
        report = engine.check(wire(3))
        assert report.is_clean
        assert report.count == 0
        assert engine.is_clean(wire(3))

    def test_violating_clip(self, engine):
        report = engine.check(wire(2))
        assert not report.is_clean
        assert report.count == 8
        assert not engine.is_clean(wire(2))

    def test_check_and_is_clean_agree(self, engine):
        rng = np.random.default_rng(3)
        for _ in range(20):
            img = (rng.random((8, 12)) < 0.45).astype(np.uint8)
            assert engine.is_clean(img) == engine.check(img).is_clean

    def test_first_violation(self, engine):
        assert engine.first_violation(wire(3)) is None
        violation = engine.first_violation(np.zeros((4, 4)))
        assert violation is not None
        assert violation.rule == "Mx.NONEMPTY"

    def test_rule_order_respected_in_first_violation(self, engine):
        violation = engine.first_violation(wire(2, gap=2))
        assert violation.rule == "Mx.W.MIN.H"  # width rule precedes spacing


class TestBatchHelpers:
    def test_legal_mask(self, engine):
        mask = engine.legal_mask([wire(3), wire(2), wire(4)])
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_filter_clean_preserves_order(self, engine):
        clips = [wire(3), wire(2), wire(5)]
        clean = engine.filter_clean(clips)
        assert len(clean) == 2
        np.testing.assert_array_equal(clean[0], wire(3))
        np.testing.assert_array_equal(clean[1], wire(5))

    def test_legality_rate(self, engine):
        assert engine.legality_rate([wire(3), wire(2)]) == 0.5
        assert engine.legality_rate([]) == 0.0


class TestReport:
    def test_counts_by_rule(self, engine):
        report = engine.check(wire(2, gap=2))
        counts = report.counts_by_rule()
        assert counts["Mx.W.MIN.H"] == 16  # two wires x 8 rows
        assert counts["Mx.S.MIN.H"] == 8

    def test_summary_strings(self, engine):
        assert "CLEAN" in engine.check(wire(3)).summary()
        assert "Mx.W.MIN.H" in engine.check(wire(2)).summary()
