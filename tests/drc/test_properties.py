"""Property-based tests over the DRC engine and rule decks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.drc import ClipMeasurements, advanced_deck, basic_deck
from repro.geometry import Grid, flip_vertical

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def clean_clips():
    deck = advanced_deck(GRID)
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    return generator.sample_many(10, np.random.default_rng(0))


class TestEngineInvariants:
    @given(st.integers(0, 9), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_pixel_mutations_never_crash(self, clip_idx, seed):
        """DRC must stay total under arbitrary single-pixel mutations."""
        deck = advanced_deck(GRID)
        engine = deck.engine()
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        clip = generator.sample(np.random.default_rng(clip_idx)).copy()
        rng = np.random.default_rng(seed)
        y = int(rng.integers(clip.shape[0]))
        x = int(rng.integers(clip.shape[1]))
        clip[y, x] ^= 1
        report = engine.check(clip)
        assert report.is_clean == engine.is_clean(clip)

    def test_vertical_flip_preserves_legality(self, clean_clips):
        """The advanced deck has no vertical asymmetry: flips stay legal."""
        engine = advanced_deck(GRID).engine()
        for clip in clean_clips:
            assert engine.is_clean(flip_vertical(clip))

    def test_clean_clips_have_no_first_violation(self, clean_clips):
        engine = advanced_deck(GRID).engine()
        for clip in clean_clips:
            assert engine.first_violation(clip) is None

    def test_violation_anchors_inside_clip(self, clean_clips):
        """Anchor coordinates of any violation must be valid pixels."""
        engine = advanced_deck(GRID).engine()
        rng = np.random.default_rng(1)
        for clip in clean_clips[:5]:
            mutated = clip.copy()
            # Carve a 1px notch to provoke violations.
            ys, xs = np.nonzero(mutated)
            pick = int(rng.integers(len(ys)))
            mutated[ys[pick], xs[pick]] = 0
            for violation in engine.check(mutated).violations:
                y, x = violation.location
                assert 0 <= y < clip.shape[0]
                assert 0 <= x < clip.shape[1]


class TestMeasurementConsistency:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_total_run_length_equals_pixel_count(self, seed):
        rng = np.random.default_rng(seed)
        img = (rng.random((12, 12)) < 0.4).astype(np.uint8)
        if not img.any():
            return
        m = ClipMeasurements(img)
        assert int(m.h_runs.lengths.sum()) == int(img.sum())
        assert int(m.v_runs.lengths.sum()) == int(img.sum())

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_component_area_sums_to_pixel_count(self, seed):
        rng = np.random.default_rng(seed)
        img = (rng.random((12, 12)) < 0.4).astype(np.uint8)
        m = ClipMeasurements(img)
        assert int(m.areas.sum()) == int(img.sum())

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_gaps_plus_runs_bounded_by_extent(self, seed):
        rng = np.random.default_rng(seed)
        img = (rng.random((10, 14)) < 0.5).astype(np.uint8)
        m = ClipMeasurements(img)
        per_row_total = np.zeros(10, dtype=np.int64)
        for table in (m.h_runs, m.h_gaps):
            np.add.at(per_row_total, table.lines, table.lengths)
        assert (per_row_total <= 14).all()


class TestDeckMonotonicity:
    def test_basic_deck_accepts_advanced_clips(self, clean_clips):
        """Advanced-deck-legal track clips satisfy the looser basic deck."""
        engine = basic_deck(GRID).engine()
        for clip in clean_clips:
            assert engine.is_clean(clip)
