"""Unit tests for every design-rule class on crafted clips."""

import numpy as np
import pytest

from repro.drc import (
    WIDE_CLASS,
    ClipMeasurements,
    DiscreteWidthRule,
    EndToEndRule,
    MaxAreaRule,
    MaxSpacingRule,
    MaxWidthRule,
    MinAreaRule,
    MinSpacingRule,
    MinWidthRule,
    NonEmptyRule,
    WidthDependentSpacingRule,
    classify_width,
)


def measure(img):
    return ClipMeasurements(np.asarray(img, dtype=np.uint8))


def two_wires(w1, w2, gap, height=10):
    """Two vertical wires of the given widths separated by ``gap``."""
    width = w1 + gap + w2 + 4
    img = np.zeros((height, width), dtype=np.uint8)
    img[:, 2 : 2 + w1] = 1
    img[:, 2 + w1 + gap : 2 + w1 + gap + w2] = 1
    return img


class TestWidthRules:
    def test_min_width_flags_narrow_wire(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 3:5] = 1  # width 2
        violations = MinWidthRule("h", 3).check(measure(img))
        assert len(violations) == 8  # one per row
        assert all(v.measured == 2 for v in violations)
        assert violations[0].rule == "Mx.W.MIN.H"

    def test_min_width_passes_at_limit(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 3:6] = 1
        assert MinWidthRule("h", 3).check(measure(img)) == []

    def test_max_width(self):
        img = np.zeros((4, 12), dtype=np.uint8)
        img[:, 1:11] = 1  # width 10
        assert MaxWidthRule("h", 9).check(measure(img))
        assert MaxWidthRule("h", 10).check(measure(img)) == []

    def test_vertical_min_width_is_segment_length(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[2:5, 3:6] = 1  # 3 rows tall
        assert MinWidthRule("v", 4).check(measure(img))
        assert MinWidthRule("v", 3).check(measure(img)) == []

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            MinWidthRule("x", 3)


class TestDiscreteWidthRule:
    def test_flags_width_not_in_set(self):
        img = two_wires(3, 4, 5)
        rule = DiscreteWidthRule("h", (3, 5))
        violations = rule.check(measure(img))
        assert violations
        assert all(v.measured == 4 for v in violations)

    def test_passes_allowed_widths(self):
        img = two_wires(3, 5, 5)
        assert DiscreteWidthRule("h", (3, 5)).check(measure(img)) == []

    def test_connector_exemption(self):
        img = np.zeros((8, 16), dtype=np.uint8)
        img[:, 2:14] = 1  # width 12 >= exemption 8
        rule = DiscreteWidthRule("h", (3, 5), exempt_at_or_above=8)
        assert rule.check(measure(img)) == []

    def test_width_between_allowed_and_exemption_is_flagged(self):
        img = np.zeros((8, 16), dtype=np.uint8)
        img[:, 2:9] = 1  # width 7 < 8
        rule = DiscreteWidthRule("h", (3, 5), exempt_at_or_above=8)
        assert rule.check(measure(img))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteWidthRule("h", ())
        with pytest.raises(ValueError):
            DiscreteWidthRule("h", (3, 5), exempt_at_or_above=5)


class TestSpacingRules:
    def test_min_spacing(self):
        img = two_wires(3, 3, 2)
        assert MinSpacingRule("h", 3).check(measure(img))
        assert MinSpacingRule("h", 2).check(measure(img)) == []

    def test_max_spacing(self):
        img = two_wires(3, 3, 15)
        assert MaxSpacingRule("h", 14).check(measure(img))
        assert MaxSpacingRule("h", 15).check(measure(img)) == []

    def test_border_clearance_is_not_a_spacing(self):
        img = np.zeros((4, 20), dtype=np.uint8)
        img[:, 9:12] = 1  # single wire, huge border clearances
        assert MaxSpacingRule("h", 3).check(measure(img)) == []


class TestClassifyWidth:
    def test_allowed(self):
        assert classify_width(3, (3, 5), 8) == 3

    def test_wide(self):
        assert classify_width(9, (3, 5), 8) == WIDE_CLASS

    def test_illegal_width_is_none(self):
        assert classify_width(4, (3, 5), 8) is None
        assert classify_width(7, (3, 5), 8) is None

    def test_no_exemption(self):
        assert classify_width(9, (3, 5), None) is None


class TestWidthDependentSpacing:
    def make_rule(self):
        return WidthDependentSpacingRule(
            "h",
            allowed_px=(3, 5),
            windows={
                (3, 3): (4, 14),
                (3, 5): (4, 13),
                (5, 3): (4, 13),
                (5, 5): (5, 12),
            },
            default_window=(4, 14),
            exempt_at_or_above=8,
        )

    def test_adjacent_5_5_gap_3_is_illegal(self):
        violations = self.make_rule().check(measure(two_wires(5, 5, 3)))
        assert violations
        assert "outside window [5, 12]" in violations[0].message

    def test_adjacent_3_3_gap_5_is_legal(self):
        assert self.make_rule().check(measure(two_wires(3, 3, 5))) == []

    def test_pair_asymmetry_uses_left_right_order(self):
        # (3,5) window is [4,13]: gap 13 passes; (5,5) would fail at 13.
        assert self.make_rule().check(measure(two_wires(3, 5, 13))) == []
        assert self.make_rule().check(measure(two_wires(5, 5, 13)))

    def test_gap_next_to_illegal_width_is_skipped(self):
        # Width 4 is illegal; the width rule owns that, spacing stays quiet.
        assert self.make_rule().check(measure(two_wires(4, 3, 2))) == []

    def test_wide_neighbour_uses_window_table(self):
        img = two_wires(12, 3, 4)  # connector next to a wire, gap 4
        assert self.make_rule().check(measure(img)) == []
        img_close = two_wires(12, 3, 3)
        assert self.make_rule().check(measure(img_close))

    def test_window_for_lookup(self):
        rule = self.make_rule()
        assert rule.window_for(3, 5) == (4, 13)
        assert rule.window_for(9, 3) == (4, 14)  # wide falls to default
        assert rule.window_for(4, 3) is None

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            WidthDependentSpacingRule(
                "h", allowed_px=(3,), windows={(3, 3): (5, 4)}
            )


class TestEndToEnd:
    def test_vertical_gap_below_min_flagged(self):
        img = np.zeros((12, 8), dtype=np.uint8)
        img[0:4, 2:5] = 1
        img[6:12, 2:5] = 1  # vertical gap of 2 rows
        assert EndToEndRule(4).check(measure(img))
        assert EndToEndRule(2).check(measure(img)) == []


class TestAreaRules:
    def test_min_area(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[2:4, 2:4] = 1  # area 4
        assert MinAreaRule(5).check(measure(img))
        assert MinAreaRule(4).check(measure(img)) == []

    def test_max_area(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[1:7, 1:7] = 1  # area 36
        assert MaxAreaRule(35).check(measure(img))
        assert MaxAreaRule(36).check(measure(img)) == []

    def test_each_component_checked_separately(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[0:2, 0:2] = 1  # area 4
        img[5:9, 5:9] = 1  # area 16
        violations = MinAreaRule(5).check(measure(img))
        assert len(violations) == 1
        assert violations[0].measured == 4


class TestNonEmpty:
    def test_empty_clip_flagged(self):
        assert NonEmptyRule().check(measure(np.zeros((4, 4))))

    def test_populated_clip_passes(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        img[1, 1] = 1
        assert NonEmptyRule().check(measure(img)) == []
