"""Unit + property tests for the GDSII writer/reader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import Grid, Rect
from repro.io import clip_to_gds, gds_to_clip, read_gds_rects, write_gds

GRID = Grid(nm_per_px=8.0, width_px=16, height_px=16)


class TestGdsRoundTrip:
    def test_single_rect(self, tmp_path):
        path = tmp_path / "one.gds"
        write_gds(path, [Rect(2, 3, 7, 9)], grid=GRID)
        rects = read_gds_rects(path, grid=GRID)
        assert rects == [Rect(2, 3, 7, 9)]

    def test_clip_roundtrip(self, tmp_path):
        clip = np.zeros((16, 16), dtype=np.uint8)
        clip[:, 2:5] = 1
        clip[6:10, 2:12] = 1
        path = clip_to_gds(tmp_path / "clip.gds", clip, grid=GRID)
        back = gds_to_clip(path, grid=GRID)
        np.testing.assert_array_equal(back, clip)

    def test_file_is_binary_gdsii(self, tmp_path):
        path = write_gds(tmp_path / "x.gds", [Rect(0, 0, 2, 2)], grid=GRID)
        data = path.read_bytes()
        # HEADER record: length 6, record type 0x0002, version 600.
        assert data[:6] == bytes([0, 6, 0, 2, 2, 88])

    def test_empty_rect_list(self, tmp_path):
        path = write_gds(tmp_path / "empty.gds", [], grid=GRID)
        assert read_gds_rects(path, grid=GRID) == []

    @given(
        hnp.arrays(dtype=np.uint8, shape=(16, 16), elements=st.integers(0, 1))
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_clip_roundtrip(self, clip):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "c.gds"
            clip_to_gds(path, clip, grid=GRID)
            np.testing.assert_array_equal(
                gds_to_clip(path, grid=GRID), (clip != 0).astype(np.uint8)
            )

    def test_corrupt_record_rejected(self, tmp_path):
        path = tmp_path / "bad.gds"
        path.write_bytes(b"\x00\x01\x00\x02")  # record length < 4
        with pytest.raises(ValueError):
            read_gds_rects(path, grid=GRID)
