"""Unit tests for the PNG writer (validated by parsing our own output)."""

import struct
import zlib

import numpy as np
import pytest

from repro.io import clip_to_png, grid_sheet, write_png


def parse_png(path):
    data = path.read_bytes()
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    offset = 8
    chunks = {}
    while offset < len(data):
        length, tag = struct.unpack(">I4s", data[offset : offset + 8])
        payload = data[offset + 8 : offset + 8 + length]
        crc = struct.unpack(">I", data[offset + 8 + length : offset + 12 + length])[0]
        assert crc == zlib.crc32(tag + payload) & 0xFFFFFFFF
        chunks.setdefault(tag, []).append(payload)
        offset += 12 + length
    return chunks


class TestWritePng:
    def test_grayscale_roundtrip(self, tmp_path):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = write_png(tmp_path / "g.png", img)
        chunks = parse_png(path)
        width, height, depth, color = struct.unpack(
            ">IIBB", chunks[b"IHDR"][0][:10]
        )
        assert (width, height, depth, color) == (4, 3, 8, 0)
        raw = zlib.decompress(chunks[b"IDAT"][0])
        rows = [raw[i * 5 + 1 : i * 5 + 5] for i in range(3)]  # skip filter byte
        np.testing.assert_array_equal(
            np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(3, 4), img
        )

    def test_rgb_header(self, tmp_path):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        path = write_png(tmp_path / "rgb.png", img)
        chunks = parse_png(path)
        color = chunks[b"IHDR"][0][9]
        assert color == 2

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "x.png", np.zeros((2, 2), dtype=np.float32))

    def test_rejects_wrong_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "x.png", np.zeros((2, 2, 4), dtype=np.uint8))


class TestClipRendering:
    def test_clip_to_png_scales(self, tmp_path):
        clip = np.zeros((8, 8), dtype=np.uint8)
        clip[:, 2:5] = 1
        path = clip_to_png(tmp_path / "clip.png", clip, scale=4)
        chunks = parse_png(path)
        width, height = struct.unpack(">II", chunks[b"IHDR"][0][:8])
        assert (width, height) == (32, 32)

    def test_clip_to_png_mask_shape_checked(self, tmp_path):
        clip = np.zeros((8, 8), dtype=np.uint8)
        clip[0, 0] = 1
        with pytest.raises(ValueError):
            clip_to_png(tmp_path / "x.png", clip, mask=np.zeros((4, 4), dtype=bool))

    def test_grid_sheet_layout(self, tmp_path):
        clips = [np.eye(8, dtype=np.uint8)] * 5
        path = grid_sheet(tmp_path / "sheet.png", clips, columns=3, scale=1, gutter=2)
        chunks = parse_png(path)
        width, height = struct.unpack(">II", chunks[b"IHDR"][0][:8])
        assert width == 3 * 8 + 2 * 2
        assert height == 2 * 8 + 2

    def test_grid_sheet_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            grid_sheet(tmp_path / "x.png", [])
