"""Unit tests for clip persistence and ASCII rendering."""

import numpy as np
import pytest

from repro.io import load_clips, render_clip, render_side_by_side, save_clips


def wire(offset, size=8):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, offset : offset + 2] = 1
    return img


class TestClipPersistence:
    def test_roundtrip_with_meta(self, tmp_path):
        clips = [wire(1), wire(3), wire(5)]
        path = save_clips(tmp_path / "lib.npz", clips, meta={"deck": "advanced"})
        loaded, meta = load_clips(path)
        assert meta == {"deck": "advanced"}
        assert len(loaded) == 3
        for original, restored in zip(clips, loaded):
            np.testing.assert_array_equal(original, restored)

    def test_odd_width_clips_roundtrip(self, tmp_path):
        # packbits pads the last byte; count= must trim it exactly.
        clips = [np.ones((5, 13), dtype=np.uint8)]
        loaded, _ = load_clips(save_clips(tmp_path / "odd.npz", clips))
        assert loaded[0].shape == (5, 13)
        np.testing.assert_array_equal(loaded[0], clips[0])

    def test_empty_library_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_clips(tmp_path / "x.npz", [])


class TestAsciiRendering:
    def test_render_clip_characters(self):
        out = render_clip(wire(1, size=4))
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0] == ".##."

    def test_render_with_mask_overlay(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        out = render_clip(wire(1, size=4), mask=mask)
        assert out.splitlines()[0][0] == "?"

    def test_render_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_clip(np.zeros((2, 2, 2)))

    def test_side_by_side_with_labels(self):
        out = render_side_by_side(
            [wire(1, size=4), wire(2, size=4)], labels=["a", "b"]
        )
        lines = out.splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_side_by_side_empty(self):
        assert render_side_by_side([]) == ""
