"""Unit tests for the DDPM/DDIM samplers with a deterministic toy model."""

import numpy as np
import pytest

from repro.diffusion import ddim_sample, ddpm_sample, linear_schedule, strided_timesteps


class ZeroModel:
    """Predicts zero noise: sampling should converge deterministically."""

    class config:  # minimal duck-typed config
        image_size = 8

    def forward(self, x, t):
        return np.zeros_like(x)


class TestStridedTimesteps:
    def test_includes_endpoints(self):
        ts = strided_timesteps(100, 10)
        assert ts[0] == 99
        assert ts[-1] == 0

    def test_descending_and_unique(self):
        ts = strided_timesteps(250, 25)
        assert (np.diff(ts) < 0).all()
        assert len(set(ts.tolist())) == len(ts)

    def test_single_step(self):
        ts = strided_timesteps(100, 1)
        assert list(ts) in ([99], [99, 0], [0])  # at least touches an end

    def test_full_coverage(self):
        ts = strided_timesteps(10, 10)
        assert list(ts) == list(range(9, -1, -1))

    def test_validation(self):
        with pytest.raises(ValueError):
            strided_timesteps(10, 0)
        with pytest.raises(ValueError):
            strided_timesteps(10, 11)


class TestSamplers:
    def test_ddim_shape_and_finiteness(self):
        schedule = linear_schedule(50)
        rng = np.random.default_rng(0)
        out = ddim_sample(ZeroModel(), schedule, (3, 1, 8, 8), rng, num_steps=10)
        assert out.shape == (3, 1, 8, 8)
        assert np.isfinite(out).all()

    def test_ddpm_shape_and_finiteness(self):
        schedule = linear_schedule(20)
        rng = np.random.default_rng(0)
        out = ddpm_sample(ZeroModel(), schedule, (2, 1, 8, 8), rng)
        assert out.shape == (2, 1, 8, 8)
        assert np.isfinite(out).all()

    def test_ddim_deterministic_with_fixed_rng(self):
        schedule = linear_schedule(50)
        out_a = ddim_sample(
            ZeroModel(), schedule, (1, 1, 8, 8), np.random.default_rng(7), num_steps=10
        )
        out_b = ddim_sample(
            ZeroModel(), schedule, (1, 1, 8, 8), np.random.default_rng(7), num_steps=10
        )
        np.testing.assert_array_equal(out_a, out_b)

    def test_zero_eps_prediction_contracts_toward_x0_estimate(self):
        # With eps-hat = 0, x0-hat = x_t / sqrt(ab): DDIM should end inside
        # the clipped data range.
        schedule = linear_schedule(50)
        rng = np.random.default_rng(3)
        out = ddim_sample(ZeroModel(), schedule, (4, 1, 8, 8), rng, num_steps=25)
        assert np.abs(out).max() <= 1.0 + 1e-5

    def test_eta_introduces_stochasticity(self):
        schedule = linear_schedule(50)
        out_a = ddim_sample(
            ZeroModel(), schedule, (1, 1, 8, 8), np.random.default_rng(1),
            num_steps=10, eta=1.0,
        )
        out_b = ddim_sample(
            ZeroModel(), schedule, (1, 1, 8, 8), np.random.default_rng(2),
            num_steps=10, eta=1.0,
        )
        assert not np.allclose(out_a, out_b)
