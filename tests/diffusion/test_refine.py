"""Unit tests for second-stage self-refinement (the paper's future work)."""

import numpy as np
import pytest

from repro.diffusion import (
    Ddpm,
    FinetuneConfig,
    linear_schedule,
    self_refine,
)
from repro.nn import TimeUnet, UNetConfig


def tiny_ddpm(seed=0):
    cfg = UNetConfig(
        image_size=8, base_channels=8, channel_mults=(1,), num_res_blocks=1,
        groups=4, time_dim=8, attention=False, seed=seed,
    )
    return Ddpm(TimeUnet(cfg), linear_schedule(20))


def library(n=6, seed=0):
    rng = np.random.default_rng(seed)
    clips = []
    for _ in range(n):
        img = np.zeros((8, 8), dtype=np.uint8)
        offset = int(rng.integers(0, 5))
        img[:, offset : offset + 3] = 1
        clips.append(img)
    return clips


class TestSelfRefine:
    def test_returns_new_trained_model(self):
        base = tiny_ddpm()
        frozen = [p.data.copy() for p in base.model.parameters()]
        cfg = FinetuneConfig(
            steps=4, batch_size=2, lr=1e-3, num_prior_samples=2,
            prior_sample_steps=3, prior_weight=0.3,
        )
        refined, result = self_refine(
            base, library(), np.random.default_rng(0), cfg
        )
        assert result.steps == 4
        for before, p in zip(frozen, base.model.parameters()):
            np.testing.assert_array_equal(before, p.data)
        assert any(
            not np.allclose(a.data, b.data)
            for a, b in zip(base.model.parameters(), refined.model.parameters())
        )

    def test_rejects_empty_library(self):
        with pytest.raises(ValueError):
            self_refine(tiny_ddpm(), [], np.random.default_rng(0))

    def test_default_config_is_light_prior(self):
        # Smoke: default config path works end to end on a tiny model.
        refined, result = self_refine(
            tiny_ddpm(),
            library(),
            np.random.default_rng(1),
            FinetuneConfig(steps=2, batch_size=2, lr=1e-3,
                           num_prior_samples=2, prior_sample_steps=2),
        )
        assert result.steps == 2
