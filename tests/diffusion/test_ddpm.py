"""Unit tests for DDPM training plumbing (tiny configs, fast)."""

import numpy as np
import pytest

from repro.diffusion import (
    Ddpm,
    clips_to_model_space,
    linear_schedule,
    model_space_to_clips,
)
from repro.nn import Ema, TimeUnet, UNetConfig


def tiny_ddpm(seed=0):
    cfg = UNetConfig(
        image_size=8, base_channels=8, channel_mults=(1,), num_res_blocks=1,
        groups=4, time_dim=8, attention=False, seed=seed,
    )
    return Ddpm(TimeUnet(cfg), linear_schedule(20))


def tiny_dataset(n=8, size=8, seed=0):
    rng = np.random.default_rng(seed)
    clips = (rng.random((n, size, size)) < 0.4).astype(np.uint8)
    return clips_to_model_space(list(clips))


class TestModelSpaceConversion:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        clips = [(rng.random((8, 8)) < 0.5).astype(np.uint8) for _ in range(3)]
        data = clips_to_model_space(clips)
        assert data.shape == (3, 1, 8, 8)
        assert data.min() == -1.0 and data.max() == 1.0
        back = model_space_to_clips(data)
        for original, restored in zip(clips, back):
            np.testing.assert_array_equal(original, restored)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            clips_to_model_space([np.zeros((2, 2, 2))])
        with pytest.raises(ValueError):
            model_space_to_clips(np.zeros((2, 3, 4, 4)))


class TestTraining:
    def test_loss_decreases_when_overfitting(self):
        ddpm = tiny_ddpm()
        data = tiny_dataset(n=4)
        rng = np.random.default_rng(0)
        result = ddpm.fit(data, steps=60, batch_size=4, lr=5e-3, rng=rng)
        early = float(np.mean(result.losses[:10]))
        late = float(np.mean(result.losses[-10:]))
        assert late < early

    def test_fit_rejects_bad_dataset_shape(self):
        ddpm = tiny_ddpm()
        with pytest.raises(ValueError):
            ddpm.fit(
                np.zeros((4, 8, 8), dtype=np.float32),
                steps=1, batch_size=2, lr=1e-3, rng=np.random.default_rng(0),
            )

    def test_prior_preservation_term_contributes(self):
        ddpm = tiny_ddpm()
        data = tiny_dataset(n=4, seed=1)
        prior = tiny_dataset(n=4, seed=2)
        rng = np.random.default_rng(0)
        result = ddpm.fit(
            data, steps=3, batch_size=2, lr=1e-3, rng=rng,
            prior_dataset=prior, prior_weight=1.0,
        )
        # With the prior term, per-step loss is the sum of two MSEs, so it
        # starts near 2.0 for an untrained eps-predictor instead of 1.0.
        assert result.losses[0] > 1.2

    def test_ema_tracks_training(self):
        ddpm = tiny_ddpm()
        ema = Ema(ddpm.model, decay=0.5)
        data = tiny_dataset()
        rng = np.random.default_rng(0)
        before = ddpm.model.parameters()[0].data.copy()
        ddpm.fit(data, steps=5, batch_size=2, lr=5e-3, rng=rng, ema=ema)
        after = ddpm.model.parameters()[0].data.copy()
        ema.swap_in()
        shadow = ddpm.model.parameters()[0].data.copy()
        ema.swap_out()
        assert not np.allclose(before, after)
        assert not np.allclose(shadow, after)

    def test_eval_loss_near_one_for_untrained_model(self):
        # eps ~ N(0,1), prediction ~ 0 => MSE ~ 1.
        ddpm = tiny_ddpm()
        loss = ddpm.eval_loss(tiny_dataset(n=16), np.random.default_rng(0))
        assert 0.7 < loss < 1.3

    def test_final_loss_nan_for_empty_result(self):
        from repro.diffusion import TrainResult

        assert np.isnan(TrainResult().final_loss)


class TestAugmentation:
    def test_draw_batch_shapes(self):
        data = tiny_dataset(n=8)
        batch = Ddpm._draw_batch(data, 5, np.random.default_rng(0), augment=True)
        assert batch.shape == (5, 1, 8, 8)

    def test_augmented_batches_stay_binary_in_model_space(self):
        data = tiny_dataset(n=8)
        batch = Ddpm._draw_batch(data, 16, np.random.default_rng(0), augment=True)
        assert set(np.unique(batch)).issubset({-1.0, 1.0})
