"""Unit tests for the RePaint inpainting sampler."""

import numpy as np
import pytest

from repro.diffusion import InpaintConfig, inpaint, linear_schedule


class ZeroModel:
    def forward(self, x, t):
        return np.zeros_like(x)


def known_batch(n=2, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, 1, size, size)) < 0.4).astype(np.float32) * 2 - 1


class TestInpaintConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InpaintConfig(num_steps=0)
        with pytest.raises(ValueError):
            InpaintConfig(resample_jumps=0)
        with pytest.raises(ValueError):
            InpaintConfig(eta=1.5)


class TestInpainting:
    def test_unmasked_region_preserved_exactly(self):
        schedule = linear_schedule(40)
        known = known_batch()
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4, :4] = True
        out = inpaint(
            ZeroModel(), schedule, known, mask, np.random.default_rng(0),
            InpaintConfig(num_steps=8),
        )
        np.testing.assert_array_equal(out[:, :, ~mask], known[:, :, ~mask])

    def test_masked_region_is_regenerated(self):
        schedule = linear_schedule(40)
        known = known_batch()
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4, :4] = True
        out = inpaint(
            ZeroModel(), schedule, known, mask, np.random.default_rng(0),
            InpaintConfig(num_steps=8),
        )
        assert not np.allclose(out[:, :, mask], known[:, :, mask])

    def test_per_sample_masks_supported(self):
        schedule = linear_schedule(40)
        known = known_batch(n=2)
        masks = np.zeros((2, 1, 8, 8), dtype=bool)
        masks[0, :, :4] = True
        masks[1, :, 4:] = True
        out = inpaint(
            ZeroModel(), schedule, known, masks, np.random.default_rng(0),
            InpaintConfig(num_steps=6),
        )
        np.testing.assert_array_equal(out[0, :, 4:], known[0, :, 4:])
        np.testing.assert_array_equal(out[1, :, :4], known[1, :, :4])

    def test_resampling_jumps_run(self):
        schedule = linear_schedule(40)
        known = known_batch(n=1)
        mask = np.zeros((8, 8), dtype=bool)
        mask[2:6, 2:6] = True
        out = inpaint(
            ZeroModel(), schedule, known, mask, np.random.default_rng(0),
            InpaintConfig(num_steps=5, resample_jumps=3),
        )
        assert np.isfinite(out).all()
        np.testing.assert_array_equal(out[:, :, ~mask], known[:, :, ~mask])

    def test_mask_shape_validation(self):
        schedule = linear_schedule(40)
        known = known_batch(n=1)
        with pytest.raises(ValueError):
            inpaint(
                ZeroModel(), schedule, known, np.zeros((3,), dtype=bool),
                np.random.default_rng(0),
            )

    def test_known_shape_validation(self):
        schedule = linear_schedule(40)
        with pytest.raises(ValueError):
            inpaint(
                ZeroModel(), schedule, np.zeros((8, 8), dtype=np.float32),
                np.zeros((8, 8), dtype=bool), np.random.default_rng(0),
            )

    def test_deterministic_given_rng(self):
        schedule = linear_schedule(40)
        known = known_batch(n=1)
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 3:6] = True
        outs = [
            inpaint(
                ZeroModel(), schedule, known, mask, np.random.default_rng(9),
                InpaintConfig(num_steps=6),
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
