"""Packed inpainting: per-segment rng streams inside one model batch."""

import numpy as np
import pytest

from repro.diffusion import (
    InpaintConfig,
    SegmentedGenerator,
    inpaint,
    inpaint_packed,
    linear_schedule,
)
from repro.nn import TimeUnet, UNetConfig, inference_mode

TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=3,
)


@pytest.fixture(scope="module")
def model():
    return TimeUnet(TINY)


@pytest.fixture(scope="module")
def schedule():
    return linear_schedule(20)


def _known(n, seed):
    rng = np.random.default_rng(seed)
    clips = rng.integers(0, 2, (n, 1, 16, 16)).astype(np.float32)
    return clips * 2.0 - 1.0


MASK = np.zeros((16, 16), dtype=bool)
MASK[:, 8:] = True


class TestSegmentedGenerator:
    def test_draws_match_standalone_generators(self):
        seg = SegmentedGenerator(
            [np.random.default_rng(1), np.random.default_rng(2)], [2, 3]
        )
        got = seg.standard_normal((5, 1, 4, 4))
        a = np.random.default_rng(1).standard_normal((2, 1, 4, 4))
        b = np.random.default_rng(2).standard_normal((3, 1, 4, 4))
        np.testing.assert_array_equal(got, np.concatenate([a, b]))

    def test_sequential_draws_advance_each_stream(self):
        seg = SegmentedGenerator([np.random.default_rng(7)], [2])
        first, second = seg.standard_normal((2, 4)), seg.standard_normal((2, 4))
        ref = np.random.default_rng(7)
        np.testing.assert_array_equal(first, ref.standard_normal((2, 4)))
        np.testing.assert_array_equal(second, ref.standard_normal((2, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentedGenerator([np.random.default_rng(0)], [1, 2])
        with pytest.raises(ValueError):
            SegmentedGenerator([np.random.default_rng(0)], [0])
        seg = SegmentedGenerator([np.random.default_rng(0)], [2])
        with pytest.raises(ValueError):
            seg.standard_normal((3, 4))


class TestInpaintPacked:
    @pytest.mark.parametrize("eta,jumps", [(0.3, 1), (0.0, 1), (0.5, 2)])
    def test_segments_bit_identical_to_standalone(
        self, model, schedule, eta, jumps
    ):
        """Tentpole invariant: packing segments changes nothing, bit for
        bit, for every sampler configuration (stochastic DDIM,
        deterministic DDIM, RePaint resampling)."""
        config = InpaintConfig(num_steps=3, eta=eta, resample_jumps=jumps)
        segments = [_known(2, 0), _known(3, 1), _known(1, 2)]
        with inference_mode(model):
            packed = inpaint_packed(
                model,
                schedule,
                np.concatenate(segments),
                MASK,
                [np.random.default_rng(10 + i) for i in range(3)],
                [2, 3, 1],
                config,
            )
            standalone = [
                inpaint(
                    model, schedule, seg, MASK,
                    np.random.default_rng(10 + i), config,
                )
                for i, seg in enumerate(segments)
            ]
        offset = 0
        for seg, want in zip(segments, standalone):
            got = packed[offset:offset + len(seg)]
            offset += len(seg)
            np.testing.assert_array_equal(
                got.view(np.uint32), want.view(np.uint32)
            )

    def test_single_segment_equals_plain_inpaint(self, model, schedule):
        config = InpaintConfig(num_steps=3)
        known = _known(3, 5)
        with inference_mode(model):
            packed = inpaint_packed(
                model, schedule, known, MASK,
                [np.random.default_rng(9)], [3], config,
            )
            plain = inpaint(
                model, schedule, known, MASK, np.random.default_rng(9), config
            )
        np.testing.assert_array_equal(
            packed.view(np.uint32), plain.view(np.uint32)
        )

    def test_size_mismatch_rejected(self, model, schedule):
        with pytest.raises(ValueError, match="segment sizes"):
            inpaint_packed(
                model, schedule, _known(3, 0), MASK,
                [np.random.default_rng(0)], [2], InpaintConfig(num_steps=2),
            )
