"""Unit + property tests for noise schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import NoiseSchedule, cosine_schedule, linear_schedule


class TestScheduleConstruction:
    def test_linear_endpoints_scale_with_step_count(self):
        short = linear_schedule(100)
        long = linear_schedule(1000)
        assert short.betas[0] == pytest.approx(long.betas[0] * 10, rel=1e-6)

    def test_betas_in_open_unit_interval(self):
        for schedule in (linear_schedule(50), cosine_schedule(50)):
            assert schedule.betas.min() > 0
            assert schedule.betas.max() < 1

    def test_rejects_too_few_steps(self):
        with pytest.raises(ValueError):
            linear_schedule(1)
        with pytest.raises(ValueError):
            cosine_schedule(0)

    def test_rejects_out_of_range_betas(self):
        with pytest.raises(ValueError):
            NoiseSchedule(betas=np.array([0.1, 1.5]))
        with pytest.raises(ValueError):
            NoiseSchedule(betas=np.array([0.0, 0.1]))


class TestDerivedQuantities:
    @pytest.mark.parametrize("make", [linear_schedule, cosine_schedule])
    def test_alpha_bars_monotone_decreasing(self, make):
        schedule = make(100)
        assert (np.diff(schedule.alpha_bars) < 0).all()
        assert schedule.alpha_bars[0] == pytest.approx(1 - schedule.betas[0])

    def test_alpha_bar_prev_shifts(self):
        schedule = linear_schedule(10)
        assert schedule.alpha_bars_prev[0] == 1.0
        np.testing.assert_allclose(
            schedule.alpha_bars_prev[1:], schedule.alpha_bars[:-1]
        )

    def test_terminal_snr_is_low(self):
        schedule = linear_schedule(250)
        assert schedule.alpha_bars[-1] < 0.05  # mostly noise at t = T-1

    def test_posterior_variance_positive(self):
        schedule = cosine_schedule(100)
        assert (schedule.posterior_variance[1:] > 0).all()


class TestQSample:
    def test_exact_reconstruction_via_predict_x0(self):
        schedule = linear_schedule(50)
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(4, 1, 8, 8)).astype(np.float32).clip(-1, 1)
        t = np.array([0, 10, 25, 49])
        noise = rng.standard_normal(x0.shape).astype(np.float32)
        xt = schedule.q_sample(x0, t, noise)
        recovered = schedule.predict_x0(xt, t, noise)
        np.testing.assert_allclose(recovered, x0, atol=1e-4)

    @given(st.integers(0, 49))
    @settings(max_examples=20, deadline=None)
    def test_q_sample_variance_matches_schedule(self, t):
        schedule = linear_schedule(50)
        rng = np.random.default_rng(1)
        x0 = np.zeros((2000, 1, 2, 2), dtype=np.float32)
        noise = rng.standard_normal(x0.shape).astype(np.float32)
        xt = schedule.q_sample(x0, np.full(2000, t), noise)
        expected_std = np.sqrt(1 - schedule.alpha_bars[t])
        assert xt.std() == pytest.approx(expected_std, rel=0.05)

    def test_predict_x0_clips_to_unit_range(self):
        schedule = linear_schedule(50)
        xt = np.full((1, 1, 2, 2), 10.0, dtype=np.float32)
        eps = np.zeros_like(xt)
        out = schedule.predict_x0(xt, np.array([40]), eps)
        assert out.max() <= 1.0
