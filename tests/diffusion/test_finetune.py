"""Unit tests for few-shot finetuning with prior preservation."""

import numpy as np
import pytest

from repro.diffusion import (
    Ddpm,
    FinetuneConfig,
    clone_ddpm,
    finetune,
    generate_prior_set,
    linear_schedule,
)
from repro.nn import TimeUnet, UNetConfig


def tiny_ddpm(seed=0):
    cfg = UNetConfig(
        image_size=8, base_channels=8, channel_mults=(1,), num_res_blocks=1,
        groups=4, time_dim=8, attention=False, seed=seed,
    )
    return Ddpm(TimeUnet(cfg), linear_schedule(20))


def starters(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.random((8, 8)) < 0.4).astype(np.uint8) for _ in range(n)]


class TestClone:
    def test_clone_is_independent(self):
        base = tiny_ddpm()
        copy = clone_ddpm(base)
        copy.model.parameters()[0].data += 1.0
        assert not np.allclose(
            base.model.parameters()[0].data, copy.model.parameters()[0].data
        )

    def test_clone_matches_initially(self):
        base = tiny_ddpm()
        copy = clone_ddpm(base)
        for a, b in zip(base.model.parameters(), copy.model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)


class TestPriorSet:
    def test_shape_and_range(self):
        prior = generate_prior_set(
            tiny_ddpm(), 5, np.random.default_rng(0), sample_steps=4, batch_size=2
        )
        assert prior.shape == (5, 1, 8, 8)
        assert prior.min() >= -1.0 and prior.max() <= 1.0


class TestFinetune:
    def test_returns_new_model_and_keeps_base_frozen(self):
        base = tiny_ddpm()
        frozen = [p.data.copy() for p in base.model.parameters()]
        cfg = FinetuneConfig(
            steps=5, batch_size=2, lr=1e-3, num_prior_samples=2, prior_sample_steps=3
        )
        tuned, result = finetune(base, starters(), np.random.default_rng(0), cfg)
        assert result.steps == 5
        assert tuned is not base
        for before, p in zip(frozen, base.model.parameters()):
            np.testing.assert_array_equal(before, p.data)
        changed = any(
            not np.allclose(a.data, b.data)
            for a, b in zip(base.model.parameters(), tuned.model.parameters())
        )
        assert changed

    def test_rejects_empty_starters(self):
        with pytest.raises(ValueError):
            finetune(tiny_ddpm(), [], np.random.default_rng(0))

    def test_rejects_wrong_starter_size(self):
        bad = [np.zeros((16, 16), dtype=np.uint8)]
        with pytest.raises(ValueError, match="model expects"):
            finetune(tiny_ddpm(), bad, np.random.default_rng(0))

    def test_prior_free_finetune(self):
        cfg = FinetuneConfig(steps=3, batch_size=2, lr=1e-3, prior_weight=0.0)
        tuned, result = finetune(
            tiny_ddpm(), starters(), np.random.default_rng(0), cfg
        )
        assert result.steps == 3
