"""SamplerPlan tables: caching, per-step values, sampler parity."""

import numpy as np
import pytest

from repro.diffusion import (
    InpaintConfig,
    cosine_schedule,
    ddim_sample,
    inpaint,
    linear_schedule,
    sampler_plan,
)
from repro.diffusion.sampler import strided_timesteps


class TestStridedTimestepsCache:
    def test_repeated_calls_share_the_array(self):
        a = strided_timesteps(100, 10)
        b = strided_timesteps(100, 10)
        assert a is b

    def test_cached_array_is_read_only(self):
        ts = strided_timesteps(50, 5)
        with pytest.raises(ValueError):
            ts[0] = 0

    def test_still_validates(self):
        with pytest.raises(ValueError):
            strided_timesteps(10, 0)
        with pytest.raises(ValueError):
            strided_timesteps(10, 11)


class TestPlanCache:
    def test_same_key_returns_same_plan(self):
        schedule = linear_schedule(80)
        assert sampler_plan(schedule, 10, 0.3) is sampler_plan(schedule, 10, 0.3)

    def test_equivalent_schedules_share_plans(self):
        # Distinct instances, same betas => same fingerprint => same plan.
        a = linear_schedule(80)
        b = linear_schedule(80)
        assert a is not b
        assert a.fingerprint == b.fingerprint
        assert sampler_plan(a, 10, 0.0) is sampler_plan(b, 10, 0.0)

    def test_distinct_keys_get_distinct_plans(self):
        schedule = linear_schedule(80)
        assert sampler_plan(schedule, 10, 0.0) is not sampler_plan(schedule, 10, 0.3)
        assert sampler_plan(schedule, 10, 0.0) is not sampler_plan(schedule, 12, 0.0)

    def test_tables_read_only(self):
        plan = sampler_plan(linear_schedule(60), 8, 0.3)
        with pytest.raises(ValueError):
            plan.sigma[0] = 0.0


@pytest.fixture
def plan_disk(tmp_path):
    """Enable the on-disk plan cache for one test, then disable it.

    The memory memo is cleared on entry and exit so other tests keep
    their process-wide ``is``-identity semantics untouched.
    """
    from repro.diffusion.plan import clear_plan_memory, configure_plan_cache

    clear_plan_memory()
    configure_plan_cache(tmp_path)
    try:
        yield tmp_path
    finally:
        configure_plan_cache(None)
        clear_plan_memory()


class TestPlanDiskCache:
    def test_reload_is_bit_identical(self, plan_disk):
        from dataclasses import fields

        from repro.diffusion.plan import clear_plan_memory, plan_cache_stats

        schedule = linear_schedule(40)
        built = sampler_plan(schedule, 9, 0.3)
        assert plan_cache_stats()["writes"] == 1
        clear_plan_memory()
        loaded = sampler_plan(schedule, 9, 0.3)
        assert plan_cache_stats()["hits"] == 1
        assert loaded is not built
        for field in fields(built):
            a, b = getattr(built, field.name), getattr(loaded, field.name)
            if isinstance(a, np.ndarray):
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)
                assert not b.flags.writeable
            else:
                assert a == b

    def test_wrong_key_file_is_rebuilt_not_trusted(self, plan_disk):
        import pathlib

        from repro.diffusion.plan import clear_plan_memory, plan_cache_stats

        schedule = linear_schedule(40)
        reference = sampler_plan(schedule, 9, 0.0)
        # A different plan's bytes dropped onto this key's filename must
        # fail the stored-key guard and trigger a rebuild.
        (victim,) = pathlib.Path(plan_disk).glob("plan-*.npz")
        clear_plan_memory()
        sampler_plan(linear_schedule(40), 5, 0.0)
        other = next(
            p for p in pathlib.Path(plan_disk).glob("plan-*.npz")
            if p != victim
        )
        victim.write_bytes(other.read_bytes())
        clear_plan_memory()
        rebuilt = sampler_plan(schedule, 9, 0.0)
        np.testing.assert_array_equal(rebuilt.sigma, reference.sigma)
        assert rebuilt.num_steps == 9

    def test_garbage_file_is_rebuilt(self, plan_disk):
        import pathlib

        from repro.diffusion.plan import clear_plan_memory

        schedule = linear_schedule(40)
        reference = sampler_plan(schedule, 7, 0.0)
        (path,) = pathlib.Path(plan_disk).glob("plan-*.npz")
        path.write_bytes(b"not an npz")
        clear_plan_memory()
        rebuilt = sampler_plan(schedule, 7, 0.0)
        np.testing.assert_array_equal(
            rebuilt.timesteps, reference.timesteps
        )

    def test_disabled_cache_reports_inactive(self):
        from repro.diffusion.plan import plan_cache_stats

        stats = plan_cache_stats()
        assert stats["dir"] is None


class TestPlanValues:
    """Each table entry equals the scalar re-derivation it replaced."""

    @pytest.mark.parametrize("eta", [0.0, 0.3, 1.0])
    def test_matches_scalar_loop(self, eta):
        schedule = cosine_schedule(90)
        plan = sampler_plan(schedule, 11, eta)
        timesteps = strided_timesteps(schedule.num_steps, 11)
        assert len(plan) == len(timesteps)
        for i, t in enumerate(timesteps):
            ab = schedule.alpha_bars[t]
            t_prev = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
            ab_prev = schedule.alpha_bars[t_prev] if t_prev >= 0 else 1.0
            sigma = eta * np.sqrt(
                max((1.0 - ab_prev) / (1.0 - ab) * (1.0 - ab / ab_prev), 0.0)
            )
            assert plan.timesteps[i] == t
            assert plan.t_prev[i] == t_prev
            assert plan.alpha_bar[i] == ab
            assert plan.alpha_bar_prev[i] == ab_prev
            assert plan.sigma[i] == sigma
            assert plan.dir_coeff[i] == np.sqrt(
                max(1.0 - ab_prev - sigma**2, 0.0)
            )
            assert plan.sqrt_ab[i] == np.sqrt(ab)
            assert plan.sqrt_one_minus_ab[i] == np.sqrt(1.0 - ab)
            assert plan.sqrt_ab_prev[i] == np.sqrt(ab_prev)
            assert plan.sqrt_renoise[i] == np.sqrt(ab / ab_prev)

    def test_last_step_is_terminal(self):
        plan = sampler_plan(linear_schedule(50), 7, 0.5)
        assert plan.t_prev[-1] == -1
        assert plan.alpha_bar_prev[-1] == 1.0
        assert plan.sigma[-1] == 0.0

    def test_schedule_sqrt_gather_tables(self):
        schedule = linear_schedule(64)
        np.testing.assert_array_equal(
            schedule.sqrt_alpha_bars, np.sqrt(schedule.alpha_bars)
        )
        np.testing.assert_array_equal(
            schedule.sqrt_one_minus_alpha_bars,
            np.sqrt(1.0 - schedule.alpha_bars),
        )


class _ZeroModel:
    """Predicts zero noise; enough to exercise the full update arithmetic."""

    training = True

    def forward(self, x, t):
        return np.zeros_like(x)


def _seed_inpaint(model, schedule, known, mask, rng, config):
    """Frozen copy of the pre-plan inpainting loop (the seed sampler)."""
    known = np.asarray(known, dtype=np.float32)
    m = np.broadcast_to(np.asarray(mask).astype(bool)[None, None], known.shape)
    n = known.shape[0]
    timesteps = strided_timesteps(schedule.num_steps, config.num_steps)
    x = rng.standard_normal(known.shape).astype(np.float32)
    for i, t in enumerate(timesteps):
        t_prev = int(timesteps[i + 1]) if i + 1 < len(timesteps) else -1
        ab = schedule.alpha_bars[t]
        ab_prev = schedule.alpha_bars[t_prev] if t_prev >= 0 else 1.0
        for jump in range(config.resample_jumps):
            t_vec = np.full(n, t, dtype=np.int64)
            eps = model.forward(x, t_vec)
            ab_g = schedule.alpha_bars[np.asarray(t_vec)].reshape(-1, 1, 1, 1)
            x0_hat = np.clip(
                (x - np.sqrt(1.0 - ab_g) * eps) / np.sqrt(ab_g), -1.0, 1.0
            ).astype(np.float32)
            sigma = config.eta * np.sqrt(
                max((1.0 - ab_prev) / (1.0 - ab) * (1.0 - ab / ab_prev), 0.0)
            )
            eps_implied = (x - np.sqrt(ab) * x0_hat) / np.sqrt(1.0 - ab)
            dir_coeff = np.sqrt(max(1.0 - ab_prev - sigma**2, 0.0))
            x_unknown = np.sqrt(ab_prev) * x0_hat + dir_coeff * eps_implied
            if sigma > 0 and t_prev >= 0:
                x_unknown = x_unknown + sigma * rng.standard_normal(known.shape)
            if t_prev >= 0:
                noise = rng.standard_normal(known.shape).astype(np.float32)
                ab_p = schedule.alpha_bars[
                    np.full(n, t_prev, dtype=np.int64)
                ].reshape(-1, 1, 1, 1)
                x_known = (
                    np.sqrt(ab_p) * known + np.sqrt(1.0 - ab_p) * noise
                ).astype(np.float32)
            else:
                x_known = known
            x = np.where(m, x_unknown, x_known).astype(np.float32)
            if jump < config.resample_jumps - 1 and t_prev >= 0:
                ratio = ab / ab_prev
                renoise = rng.standard_normal(known.shape).astype(np.float32)
                x = (
                    np.sqrt(ratio) * x + np.sqrt(1.0 - ratio) * renoise
                ).astype(np.float32)
    return np.where(m, x, known).astype(np.float32)


class TestSamplerParity:
    """Plan-driven samplers are bit-identical to the seed derivation."""

    @pytest.mark.parametrize("eta", [0.0, 0.3])
    @pytest.mark.parametrize("jumps", [1, 2])
    def test_inpaint_matches_seed_loop(self, eta, jumps):
        schedule = linear_schedule(40)
        config = InpaintConfig(num_steps=5, resample_jumps=jumps, eta=eta)
        known = np.full((2, 1, 8, 8), -1.0, dtype=np.float32)
        known[:, :, 2:6, 2:6] = 1.0
        mask = np.zeros((8, 8), dtype=bool)
        mask[:, 4:] = True
        model = _ZeroModel()
        a = _seed_inpaint(
            model, schedule, known, mask, np.random.default_rng(5), config
        )
        b = inpaint(model, schedule, known, mask, np.random.default_rng(5), config)
        np.testing.assert_array_equal(a.view(np.uint32), b.view(np.uint32))

    def test_ddim_deterministic_and_finite(self):
        schedule = linear_schedule(30)
        out1 = ddim_sample(
            _ZeroModel(), schedule, (2, 1, 8, 8), np.random.default_rng(3),
            num_steps=6, eta=0.5,
        )
        out2 = ddim_sample(
            _ZeroModel(), schedule, (2, 1, 8, 8), np.random.default_rng(3),
            num_steps=6, eta=0.5,
        )
        np.testing.assert_array_equal(out1, out2)
        assert np.isfinite(out1).all()
