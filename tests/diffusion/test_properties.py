"""Property-based tests for diffusion invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import InpaintConfig, inpaint, linear_schedule, strided_timesteps


class ZeroModel:
    def forward(self, x, t):
        return np.zeros_like(x)


class TestScheduleProperties:
    @given(st.integers(2, 500), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_strided_timesteps_bounds(self, train_steps, sample_steps):
        sample_steps = min(sample_steps, train_steps)
        ts = strided_timesteps(train_steps, sample_steps)
        assert ts[0] == train_steps - 1
        assert ts[-1] == 0 or ts.size == 1
        assert (ts >= 0).all() and (ts < train_steps).all()
        assert (np.diff(ts) < 0).all() or ts.size == 1

    @given(st.integers(2, 300))
    @settings(max_examples=30, deadline=None)
    def test_snr_is_monotone_decreasing(self, steps):
        schedule = linear_schedule(steps)
        snr = schedule.alpha_bars / (1.0 - schedule.alpha_bars)
        assert (np.diff(snr) < 0).all()


class TestInpaintProperties:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 3),
        st.integers(2, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_unmasked_always_preserved(self, seed, batch, steps):
        rng = np.random.default_rng(seed)
        known = (rng.random((batch, 1, 8, 8)) < 0.5).astype(np.float32) * 2 - 1
        mask = rng.random((8, 8)) < 0.5
        if mask.all():
            mask[0, 0] = False
        if not mask.any():
            mask[0, 0] = True
        out = inpaint(
            ZeroModel(), linear_schedule(30), known, mask,
            np.random.default_rng(seed + 1),
            InpaintConfig(num_steps=steps),
        )
        np.testing.assert_array_equal(out[:, :, ~mask], known[:, :, ~mask])
        assert np.isfinite(out).all()
        assert np.abs(out).max() <= 3.0  # stays in a sane numeric range
