"""Snapshot persistence: lossless round trips and cross-library merges."""

import json

import numpy as np
import pytest

from repro.library import (
    MANIFEST_NAME,
    PREVIOUS_MANIFEST_NAME,
    InMemoryStore,
    ShardedStore,
    is_library_dir,
    load_library,
    merge_libraries,
    save_library,
)


def clip(seed):
    img = np.zeros((8, 8), dtype=np.uint8)
    img[:, seed % 5 : seed % 5 + 2 + seed % 3] = 1
    return img


def assert_same_library(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestRoundTrip:
    def test_sharded_store_round_trips_losslessly(self, tmp_path):
        store = ShardedStore(
            [clip(i) for i in range(20)], num_shards=4, name="trip"
        )
        save_library(store, tmp_path / "lib")
        loaded = load_library(tmp_path / "lib")
        assert loaded.name == "trip"
        assert loaded.num_shards == 4
        assert_same_library(store, loaded)
        got, want = loaded.summary(), store.summary()
        assert (got.count, got.unique) == (want.count, want.unique)
        assert got.h2 == pytest.approx(want.h2)

    def test_in_memory_store_saves_as_single_shard(self, tmp_path):
        store = InMemoryStore([clip(i) for i in range(6)], name="flat")
        save_library(store, tmp_path / "lib")
        manifest = json.loads((tmp_path / "lib" / MANIFEST_NAME).read_text())
        assert manifest["num_shards"] == 1
        assert_same_library(store, load_library(tmp_path / "lib"))

    def test_load_can_reshard(self, tmp_path):
        store = ShardedStore([clip(i) for i in range(15)], num_shards=2)
        save_library(store, tmp_path / "lib")
        loaded = load_library(tmp_path / "lib", num_shards=7)
        assert loaded.num_shards == 7
        assert_same_library(store, loaded)

    def test_empty_store_round_trips(self, tmp_path):
        save_library(ShardedStore(num_shards=3, name="empty"), tmp_path / "lib")
        loaded = load_library(tmp_path / "lib")
        assert len(loaded) == 0
        assert list((tmp_path / "lib").glob("shard-*.npz")) == []

    def test_resave_replaces_previous_snapshot(self, tmp_path):
        store = ShardedStore([clip(i) for i in range(10)], num_shards=4)
        save_library(store, tmp_path / "lib")
        store.admit(clip(11))
        save_library(store, tmp_path / "lib")
        assert_same_library(store, load_library(tmp_path / "lib"))

    def test_non_binary_input_round_trips_as_admitted(self, tmp_path):
        # Stores normalise to binary {0, 1} on admission (the clip's hash
        # identity); what a snapshot returns must equal what the store
        # held, even for multi-valued or bool input rasters.
        loud = np.full((8, 8), 5, dtype=np.uint8)
        boolean = clip(1).astype(bool)
        store = ShardedStore([loud, boolean], num_shards=2)
        for held in store:
            assert set(np.unique(held)) <= {0, 1}
        save_library(store, tmp_path / "lib")
        assert_same_library(store, load_library(tmp_path / "lib"))

    def test_shard_files_are_plain_clip_archives(self, tmp_path):
        from repro.io.clips import load_clips

        store = ShardedStore([clip(i) for i in range(10)], num_shards=2)
        save_library(store, tmp_path / "lib")
        for file in (tmp_path / "lib").glob("shard-*.npz"):
            clips, meta = load_clips(file)
            assert len(clips) == len(meta["sequence"]) == len(meta["hashes"])


class TestSafety:
    def test_is_library_dir(self, tmp_path):
        assert not is_library_dir(tmp_path)
        save_library(InMemoryStore([clip(0)]), tmp_path / "lib")
        assert is_library_dir(tmp_path / "lib")

    def test_refuses_foreign_shard_files(self, tmp_path):
        foreign = tmp_path / "not-ours"
        foreign.mkdir()
        (foreign / "shard-0000.npz").write_bytes(b"something else")
        with pytest.raises(ValueError, match="refusing"):
            save_library(InMemoryStore([clip(0)]), foreign)

    def test_refuses_file_target(self, tmp_path):
        target = tmp_path / "a-file"
        target.write_text("x")
        with pytest.raises(ValueError):
            save_library(InMemoryStore([clip(0)]), target)

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_library(tmp_path)

    def test_load_detects_count_mismatch(self, tmp_path):
        save_library(InMemoryStore([clip(i) for i in range(4)]), tmp_path / "lib")
        manifest_path = tmp_path / "lib" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["count"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="promises"):
            load_library(tmp_path / "lib")


class TestCrashSafety:
    """Generational snapshots: a bad current generation falls back."""

    def test_second_save_keeps_previous_manifest(self, tmp_path):
        store = ShardedStore([clip(i) for i in range(6)], num_shards=2)
        save_library(store, tmp_path / "lib")
        store.admit(clip(7))
        save_library(store, tmp_path / "lib")
        lib = tmp_path / "lib"
        assert (lib / MANIFEST_NAME).exists()
        assert (lib / PREVIOUS_MANIFEST_NAME).exists()
        current = json.loads((lib / MANIFEST_NAME).read_text())
        previous = json.loads((lib / PREVIOUS_MANIFEST_NAME).read_text())
        assert current["generation"] > previous["generation"]

    def test_corrupt_current_manifest_falls_back_to_previous(self, tmp_path):
        first = [clip(i) for i in range(6)]
        store = ShardedStore(list(first), num_shards=2, name="fb")
        save_library(store, tmp_path / "lib")
        store.admit(clip(7))
        save_library(store, tmp_path / "lib")
        (tmp_path / "lib" / MANIFEST_NAME).write_text("{ torn json")
        loaded = load_library(tmp_path / "lib")
        # The fallback serves the *previous* generation's content.
        assert_same_library(loaded, ShardedStore(first, num_shards=2))

    def test_torn_current_shard_falls_back_to_previous(self, tmp_path):
        # A kill -9 between shard writes and the manifest fsync can leave
        # a truncated .npz for the newest generation; loading must fall
        # back to the last generation whose files are intact, not raise.
        first = [clip(i) for i in range(6)]
        store = ShardedStore(list(first), num_shards=1, name="torn")
        save_library(store, tmp_path / "lib")
        store.admit(clip(7))
        save_library(store, tmp_path / "lib")
        current = json.loads((tmp_path / "lib" / MANIFEST_NAME).read_text())
        for name in current["shards"]:
            shard = tmp_path / "lib" / name
            data = shard.read_bytes()
            shard.write_bytes(data[: len(data) // 2])
        loaded = load_library(tmp_path / "lib")
        assert_same_library(loaded, ShardedStore(first, num_shards=1))

    def test_single_save_with_bad_manifest_still_raises(self, tmp_path):
        # With no previous generation there is nothing to fall back to:
        # the current manifest's error must propagate, never be masked.
        save_library(InMemoryStore([clip(0)]), tmp_path / "lib")
        (tmp_path / "lib" / MANIFEST_NAME).write_text("not json at all")
        with pytest.raises(ValueError):
            load_library(tmp_path / "lib")

    def test_resave_prunes_generations_older_than_previous(self, tmp_path):
        store = ShardedStore([clip(i) for i in range(4)], num_shards=1)
        for extra in (5, 6, 7):
            save_library(store, tmp_path / "lib")
            store.admit(clip(extra))
        referenced = set()
        for name in (MANIFEST_NAME, PREVIOUS_MANIFEST_NAME):
            manifest = json.loads((tmp_path / "lib" / name).read_text())
            referenced.update(manifest["shards"])
        on_disk = {p.name for p in (tmp_path / "lib").glob("shard-*.npz")}
        assert on_disk == referenced


class TestMerge:
    def test_merge_dedups_and_keeps_first_source_order(self, tmp_path):
        a = ShardedStore([clip(i) for i in range(8)], num_shards=2, name="a")
        b = ShardedStore([clip(i) for i in range(4, 12)], num_shards=4, name="b")
        save_library(a, tmp_path / "a")
        save_library(b, tmp_path / "b")
        merged = merge_libraries([tmp_path / "a", tmp_path / "b"])
        expected = list(a.clips) + [
            c for c in b.clips if c not in a
        ]
        assert_same_library(merged, expected)
        assert merged.num_shards == a.num_shards  # first source's layout

    def test_merge_is_deterministic_across_save_shapes(self, tmp_path):
        clips = [clip(i) for i in range(10)]
        save_library(ShardedStore(clips, num_shards=2), tmp_path / "two")
        save_library(ShardedStore(clips, num_shards=5), tmp_path / "five")
        extra = [clip(i) for i in range(6, 14)]
        save_library(ShardedStore(extra, num_shards=3), tmp_path / "extra")
        m1 = merge_libraries([tmp_path / "two", tmp_path / "extra"], num_shards=4)
        m2 = merge_libraries([tmp_path / "five", tmp_path / "extra"], num_shards=4)
        assert_same_library(m1, m2)

    def test_merge_requires_sources(self):
        with pytest.raises(ValueError):
            merge_libraries([])
