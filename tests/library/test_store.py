"""Unit tests for the library stores: dedup, order, sharding, caching."""

import numpy as np
import pytest

import repro.library.sharded as sharded_mod
import repro.library.store as store_mod
from repro.core.library import PatternLibrary
from repro.library import (
    InMemoryStore,
    LibraryStore,
    ShardDelta,
    ShardedStore,
    compute_delta,
    shard_of,
    store_delta,
)
from repro.metrics.diversity import summarize_library


def clip(seed):
    """A wire clip whose offset/width vary with the seed (distinct H2
    geometry classes — dense random noise would all share one class)."""
    img = np.zeros((8, 8), dtype=np.uint8)
    offset = seed % 5
    width = 2 + seed % 3
    img[:, offset : offset + width] = 1
    return img


UNIQUE = 12  # distinct clips producible by clip() (5 offsets x 3 widths, clipped)


def stream(n, dup_every=3):
    """n clips with a duplicate every ``dup_every`` positions."""
    return [clip(i if i % dup_every else 0) for i in range(n)]


@pytest.fixture(params=["memory", "sharded", "facade"])
def store(request):
    if request.param == "memory":
        return InMemoryStore()
    if request.param == "facade":
        return PatternLibrary()
    return ShardedStore(num_shards=4)


class TestStoreSemantics:
    def test_satisfies_protocol(self, store):
        assert isinstance(store, LibraryStore)

    def test_admit_deduplicates(self, store):
        assert store.admit(clip(0))
        assert not store.admit(clip(0))
        assert len(store) == 1

    def test_admit_many_returns_per_clip_flags(self, store):
        flags = store.admit_many([clip(0), clip(1), clip(0), clip(2)])
        assert flags == [True, True, False, True]
        assert len(store) == 3

    def test_insertion_order_preserved(self, store):
        store.admit_many([clip(3), clip(1), clip(2)])
        np.testing.assert_array_equal(store.clips[0], clip(3))
        np.testing.assert_array_equal(store.clips[2], clip(2))

    def test_contains(self, store):
        store.admit(clip(0))
        assert clip(0) in store
        assert clip(1) not in store

    def test_clips_is_immutable_tuple(self, store):
        store.admit_many([clip(0), clip(1)])
        view = store.clips
        assert isinstance(view, tuple)
        with pytest.raises((TypeError, AttributeError)):
            view.append(clip(2))  # type: ignore[attr-defined]
        # Mutating what the caller passed in must not reach the store.
        source = clip(3)
        store.admit(source)
        source[0, 0] ^= 1
        assert not np.array_equal(store.clips[-1], source)

    def test_items_pair_digests_with_clips(self, store):
        from repro.geometry.hashing import pattern_hash

        store.admit_many([clip(0), clip(1)])
        items = list(store.items())
        assert [digest for digest, _ in items] == [
            pattern_hash(c) for _, c in items
        ]

    def test_copy_is_independent(self, store):
        store.admit(clip(0))
        dup = store.copy()
        dup.admit(clip(1))
        assert len(store) == 1
        assert len(dup) == 2
        assert clip(1) in dup and clip(1) not in store

    def test_merge_rejects_delta_internal_duplicates(self, store):
        delta = compute_delta([clip(0), clip(1), clip(0)])
        assert store.merge(delta) == [True, True, False]

    def test_summary_matches_flat_computation(self, store):
        store.admit_many([clip(i) for i in range(7)])
        expected = summarize_library(list(store.clips))
        got = store.summary()
        assert got.count == expected.count
        assert got.unique == expected.unique
        assert got.h1 == pytest.approx(expected.h1)
        assert got.h2 == pytest.approx(expected.h2)
        assert got.mean_density == pytest.approx(expected.mean_density)


class TestCopyDoesNotRehash:
    def test_facade_copy_skips_hashing(self, monkeypatch):
        library = PatternLibrary([clip(i) for i in range(5)])

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("copy() must not re-hash clips")

        monkeypatch.setattr(store_mod, "pattern_hash", boom)
        monkeypatch.setattr(store_mod, "pattern_hashes", boom)
        dup = library.copy()
        assert len(dup) == 5

    def test_sharded_copy_skips_hashing(self, monkeypatch):
        store = ShardedStore([clip(i) for i in range(5)], num_shards=3)
        monkeypatch.setattr(
            sharded_mod,
            "pattern_hash",
            lambda *a: (_ for _ in ()).throw(AssertionError("re-hash")),
        )
        dup = store.copy()
        assert len(dup) == 5
        assert dup.shard_sizes() == store.shard_sizes()


class TestSummaryCaching:
    def test_in_memory_summary_cached_per_generation(self, monkeypatch):
        calls = {"n": 0}
        real = store_mod.summarize_library

        def counting(clips, **kwargs):
            calls["n"] += 1
            return real(clips, **kwargs)

        monkeypatch.setattr(store_mod, "summarize_library", counting)
        store = InMemoryStore([clip(i) for i in range(5)])
        store.summary()
        store.summary()
        store.summary()
        assert calls["n"] == 1
        store.admit(clip(7))
        store.summary()
        store.summary()
        assert calls["n"] == 2

    def test_sharded_rescans_only_dirty_shards(self, monkeypatch):
        scanned = []
        real = sharded_mod.summarize_shard

        def counting(clips, **kwargs):
            scanned.append(len(list(clips)))
            return real(clips, **kwargs)

        monkeypatch.setattr(sharded_mod, "summarize_shard", counting)
        store = ShardedStore([clip(i) for i in range(9)], num_shards=4)
        store.summary()
        first_pass = len(scanned)
        assert first_pass == 4  # every shard scanned once
        store.summary()
        assert len(scanned) == first_pass  # fully cached

        new = clip(10)
        assert new not in store
        store.admit(new)
        store.summary()
        # Exactly the one shard that grew is rescanned.
        assert len(scanned) == first_pass + 1

    def test_store_summary_skips_uniqueness_rehash(self, monkeypatch):
        import repro.metrics.diversity as diversity_mod

        flat = InMemoryStore([clip(i) for i in range(5)])
        shard = ShardedStore([clip(i) for i in range(5)], num_shards=3)
        monkeypatch.setattr(
            diversity_mod,
            "unique_count",
            lambda *a: (_ for _ in ()).throw(
                AssertionError("summary() must not re-hash a dedup store")
            ),
        )
        assert flat.summary().unique == 5
        assert shard.summary().unique == 5


class TestSharding:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_contents_and_order_match_in_memory(self, num_shards):
        clips = stream(30)
        flat = InMemoryStore(clips)
        shard = ShardedStore(clips, num_shards=num_shards)
        assert len(flat) == len(shard)
        for a, b in zip(flat, shard):
            np.testing.assert_array_equal(a, b)

    def test_partition_follows_hash_prefix(self):
        from repro.geometry.hashing import pattern_hash

        store = ShardedStore([clip(i) for i in range(UNIQUE)], num_shards=4)
        for shard in range(store.num_shards):
            for c in store.shard_clips(shard):
                assert shard_of(pattern_hash(c), store.num_shards) == shard

    def test_shard_sizes_sum_to_len(self):
        store = ShardedStore(stream(25), num_shards=5)
        assert sum(store.shard_sizes()) == len(store)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedStore(num_shards=0)


class TestDeltaProtocol:
    def test_offsets_and_local_dedup(self):
        clips = [clip(0), clip(0), clip(1)]
        delta = compute_delta(clips, offset=10)
        assert delta.offset == 10
        assert delta.local_new == [True, False, True]
        assert len(delta) == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ShardDelta(offset=0, hashes=["a"], clips=[])

    def test_store_delta_round_trips_between_stores(self):
        src = ShardedStore(stream(12), num_shards=3, name="src")
        dst = InMemoryStore([clip(0)])
        flags = dst.merge(store_delta(src))
        assert len(flags) == len(src)
        # Everything except the patterns dst already held is admitted.
        expected = [c for c in src.clips if not np.array_equal(c, clip(0))]
        assert len(dst) == 1 + len(expected)
        for a, b in zip(list(dst)[1:], expected):
            np.testing.assert_array_equal(a, b)


class TestFacade:
    def test_add_and_add_many_vocabulary(self):
        library = PatternLibrary()
        assert library.add(clip(0))
        assert not library.add(clip(0))
        assert library.add_many([clip(0), clip(1), clip(2)]) == 2
        assert len(library) == 3

    def test_facade_is_a_store(self):
        assert isinstance(PatternLibrary(), InMemoryStore)
