"""Shard-merge determinism: pooled admission == serial, bit for bit.

The worker merge protocol must make library contents and insertion order a
function of the seed alone — never of ``jobs`` or the pool flavour.
"""

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.core import PatternPaint, PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import advanced_deck
from repro.engine import (
    BatchExecutor,
    ExecutorConfig,
    GenerationRequest,
    run_generation,
)
from repro.geometry import Grid
from repro.library import InMemoryStore, ShardedStore
from repro.nn import TimeUnet, UNetConfig

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def candidates(deck):
    """A candidate batch with heavy duplication (the iterative-loop shape)."""
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    unique = generator.sample_many(10, np.random.default_rng(3))
    rng = np.random.default_rng(4)
    clips = [unique[i] for i in rng.integers(0, len(unique), size=40)]
    return clips


def assert_same_library(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


class TestAdmitBatchDeterminism:
    @pytest.mark.parametrize("make_store", [
        lambda: InMemoryStore(),
        lambda: ShardedStore(num_shards=4),
    ])
    @pytest.mark.parametrize("jobs,pool", [(3, "thread"), (2, "process")])
    def test_pooled_matches_serial(self, deck, candidates, make_store, jobs, pool):
        serial_store = make_store()
        serial_flags = BatchExecutor(deck.engine()).admit_batch(
            serial_store, candidates
        )
        pooled_store = make_store()
        pooled_flags = BatchExecutor(
            deck.engine(),
            ExecutorConfig(jobs=jobs, pool=pool, admit_pool_threshold=0),
        ).admit_batch(pooled_store, candidates)
        assert serial_flags == pooled_flags
        assert_same_library(serial_store, pooled_store)

    def test_flags_align_with_candidates(self, deck, candidates):
        store = ShardedStore(num_shards=4)
        flags = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=3, admit_pool_threshold=0)
        ).admit_batch(store, candidates)
        assert len(flags) == len(candidates)
        # A candidate is admitted iff it is the first occurrence.
        seen = []
        for flag, clip in zip(flags, candidates):
            first = not any(np.array_equal(clip, s) for s in seen)
            assert flag == first
            seen.append(clip)


class TestRunGenerationDeterminism:
    def test_jobs_and_shards_do_not_change_the_library(self, deck):
        def run(jobs, store):
            return run_generation(
                GenerationRequest(backend="rule", count=12, seed=5, deck=deck),
                jobs=jobs,
                library=store,
            )

        serial = run(1, InMemoryStore())
        pooled = run(3, ShardedStore(num_shards=4))
        assert serial.admitted == pooled.admitted
        assert_same_library(serial.library, pooled.library)


class TestPipelineShardDeterminism:
    """Acceptance: ShardedStore + jobs>1 == single store serial, bit-identical."""

    @pytest.fixture(scope="class")
    def parts(self, deck):
        cfg = UNetConfig(
            image_size=32, base_channels=8, channel_mults=(1,), num_res_blocks=1,
            groups=4, time_dim=8, attention=False, seed=2,
        )
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        starters = generator.sample_many(2, np.random.default_rng(8))
        return cfg, starters

    def _run(self, deck, parts, *, jobs, shards):
        cfg, starters = parts
        pipeline = PatternPaint(
            Ddpm(TimeUnet(cfg), linear_schedule(20)),
            deck,
            PatternPaintConfig(
                inpaint=InpaintConfig(num_steps=3),
                variations_per_mask=1,
                samples_per_iteration=4,
                select_k=2,
                jobs=jobs,
                library_shards=shards,
            ),
        )
        return pipeline.run(starters, np.random.default_rng(6), iterations=1)

    def test_sharded_pooled_run_matches_serial_run(self, deck, parts):
        serial = self._run(deck, parts, jobs=1, shards=1)
        pooled = self._run(deck, parts, jobs=3, shards=4)
        assert_same_library(serial.library, pooled.library)
        assert [s.admitted for s in serial.stats] == [
            s.admitted for s in pooled.stats
        ]
        assert [s.h2 for s in serial.stats] == pytest.approx(
            [s.h2 for s in pooled.stats]
        )
