"""BatchExecutor behavior: pooling determinism, caching, chunking,
close safety, and the staged plan/execute/finalize API."""

import threading

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.core.library import PatternLibrary
from repro.drc import advanced_deck
from repro.engine import (
    BatchExecutor,
    ExecutorConfig,
    GenerationRequest,
    get_backend,
    run_generation,
)
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def clips(deck):
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    return generator.sample_many(8, np.random.default_rng(0))


@pytest.fixture(scope="module")
def noisy_raws(clips):
    """Synthetic 'model outputs': legal clips in [-1, 1] with edge jitter."""
    rng = np.random.default_rng(1)
    raws = []
    for clip in clips:
        raw = clip.astype(np.float32) * 2.0 - 1.0
        raw += rng.normal(0.0, 0.35, size=raw.shape).astype(np.float32)
        raws.append(np.clip(raw, -1.0, 1.0))
    return raws


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(model_batch=0)
        with pytest.raises(ValueError):
            ExecutorConfig(jobs=0)
        with pytest.raises(ValueError):
            ExecutorConfig(pool="fiber")


class TestPostprocess:
    def test_counts_and_legality(self, deck, clips, noisy_raws):
        executor = BatchExecutor(deck.engine())
        library = PatternLibrary()
        result = executor.postprocess(
            noisy_raws, list(clips), np.random.default_rng(2), library=library
        )
        assert len(result.clips) == len(clips)
        assert result.legal.shape == (len(clips),)
        engine = deck.engine()
        expected = [engine.is_clean(c) for c in result.clips]
        assert list(result.legal) == expected
        assert result.admitted == len(library)
        assert all(engine.is_clean(c) for c in library)

    def test_binary_candidates_skip_denoise(self, deck, clips):
        executor = BatchExecutor(deck.engine())
        result = executor.postprocess(
            list(clips), [None] * len(clips), np.random.default_rng(0)
        )
        # Rule-generated clips are DR-clean by construction and unchanged.
        assert result.legal.all()
        for before, after in zip(clips, result.clips):
            np.testing.assert_array_equal(before, after)

    def test_empty_batch(self, deck):
        executor = BatchExecutor(deck.engine())
        result = executor.postprocess([], [], np.random.default_rng(0))
        assert result.clips == []
        assert result.legal.size == 0


class TestPoolDeterminism:
    """Satellite: rng.spawn() per job => pooled == serial, bit for bit."""

    def _run(self, deck, noisy_raws, clips, jobs, pool="thread"):
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=jobs, pool=pool)
        )
        library = PatternLibrary()
        result = executor.postprocess(
            noisy_raws, list(clips), np.random.default_rng(7), library=library
        )
        return result, library

    def test_thread_pool_matches_serial(self, deck, clips, noisy_raws):
        serial, lib_serial = self._run(deck, noisy_raws, clips, jobs=1)
        pooled, lib_pooled = self._run(deck, noisy_raws, clips, jobs=4)
        assert len(serial.clips) == len(pooled.clips)
        for a, b in zip(serial.clips, pooled.clips):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(serial.legal, pooled.legal)
        assert len(lib_serial) == len(lib_pooled)
        for a, b in zip(lib_serial, lib_pooled):
            np.testing.assert_array_equal(a, b)

    def test_process_pool_matches_serial(self, deck, clips, noisy_raws):
        serial, _ = self._run(deck, noisy_raws[:4], clips[:4], jobs=1)
        pooled, _ = self._run(
            deck, noisy_raws[:4], clips[:4], jobs=2, pool="process"
        )
        for a, b in zip(serial.clips, pooled.clips):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(serial.legal, pooled.legal)


class TestCaching:
    def test_repeated_clips_hit_cache(self, deck, clips):
        executor = BatchExecutor(deck.engine())
        first, _ = executor.check_batch(list(clips))
        hits_before = executor.engine.cache.hits
        second, _ = executor.check_batch(list(clips))
        np.testing.assert_array_equal(first, second)
        assert executor.engine.cache.hits >= hits_before + len(clips)

    def test_run_reports_cache_counters(self, deck):
        backend = get_backend("rule", deck=deck)
        executor = BatchExecutor(deck.engine())
        request = GenerationRequest(backend="rule", count=4, seed=11, deck=deck)
        first = executor.run(request, backend=backend)
        second = executor.run(request, backend=backend)
        assert first.attempts == second.attempts == 4
        # Same seed => same clips => the second pass is all cache hits.
        assert second.cache_hits >= len(second.clips)
        assert second.cache_misses == 0
        for a, b in zip(first.clips, second.clips):
            np.testing.assert_array_equal(a, b)


class TestModelBatching:
    def test_chunk_sizes(self, deck):
        executor = BatchExecutor(deck.engine(), ExecutorConfig(model_batch=3))
        seen: list[int] = []

        def model_fn(chunk_t, chunk_m, rng):
            seen.append(len(chunk_t))
            return [t.astype(np.float32) for t in chunk_t]

        items = [np.zeros((4, 4), dtype=np.uint8)] * 8
        outputs, seconds = executor.run_model_batched(
            model_fn, items, items, np.random.default_rng(0)
        )
        assert seen == [3, 3, 2]
        assert len(outputs) == 8
        assert seconds >= 0.0

    def test_mismatched_lengths_rejected(self, deck):
        executor = BatchExecutor(deck.engine())
        with pytest.raises(ValueError):
            executor.run_model_batched(
                lambda t, m, r: t,
                [np.zeros((4, 4))],
                [],
                np.random.default_rng(0),
            )


class TestCloseSafety:
    """Satellite: close() is idempotent and safe under concurrent callers."""

    def test_double_close_does_not_raise(self, deck, clips):
        executor = BatchExecutor(deck.engine(), ExecutorConfig(jobs=2))
        executor.check_batch(list(clips))  # materialise a pool
        executor.close()
        executor.close()

    def test_close_never_used_executor(self, deck):
        BatchExecutor(deck.engine()).close()

    def test_concurrent_close_callers(self, deck, clips):
        executor = BatchExecutor(deck.engine(), ExecutorConfig(jobs=2))
        executor.check_batch(list(clips))
        errors: list[BaseException] = []

        def closer():
            try:
                executor.close()
            except BaseException as error:  # noqa: BLE001 - test capture
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_close_while_running_then_reuse(self, deck, clips, noisy_raws):
        executor = BatchExecutor(deck.engine(), ExecutorConfig(jobs=2))
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer():
            try:
                while not stop.is_set():
                    executor.postprocess(
                        list(noisy_raws), list(clips), np.random.default_rng(3)
                    )
            except BaseException as error:  # noqa: BLE001 - test capture
                errors.append(error)

        worker = threading.Thread(target=hammer)
        worker.start()
        for _ in range(5):
            executor.close()  # racing live postprocess calls
        stop.set()
        worker.join()
        executor.close()
        assert errors == []
        # A closed executor lazily re-creates pools when used again.
        mask, _ = executor.check_batch(list(clips))
        assert mask.shape == (len(clips),)
        executor.close()

    def test_pipeline_close_propagates_to_owned_executor(self, deck, monkeypatch):
        from repro.core.pipeline import PatternPaint
        from repro.diffusion import Ddpm, linear_schedule
        from repro.nn import TimeUnet, UNetConfig

        ddpm = Ddpm(
            TimeUnet(UNetConfig(
                image_size=16, base_channels=8, channel_mults=(1,),
                num_res_blocks=1, groups=4, time_dim=16, seed=0,
            )),
            linear_schedule(16),
        )
        pipeline = PatternPaint(ddpm, deck)
        calls = []
        monkeypatch.setattr(
            pipeline.executor, "close", lambda: calls.append("owned")
        )
        pipeline.close()
        assert calls == ["owned"]

    def test_pipeline_leaves_shared_executor_open(self, deck, monkeypatch):
        from repro.core.pipeline import PatternPaint
        from repro.diffusion import Ddpm, linear_schedule
        from repro.nn import TimeUnet, UNetConfig

        shared = BatchExecutor(deck.engine())
        ddpm = Ddpm(
            TimeUnet(UNetConfig(
                image_size=16, base_channels=8, channel_mults=(1,),
                num_res_blocks=1, groups=4, time_dim=16, seed=0,
            )),
            linear_schedule(16),
        )
        pipeline = PatternPaint(ddpm, deck, executor=shared)
        calls = []
        monkeypatch.setattr(shared, "close", lambda: calls.append("shared"))
        pipeline.close()
        assert calls == []  # the owner closes shared executors
        assert pipeline.executor is shared

    def test_pipeline_rejects_mismatched_shared_executor(self, deck):
        from repro.core.pipeline import PatternPaint, PatternPaintConfig
        from repro.diffusion import Ddpm, linear_schedule
        from repro.nn import TimeUnet, UNetConfig

        shared = BatchExecutor(deck.engine(), ExecutorConfig(model_batch=8))
        ddpm = Ddpm(
            TimeUnet(UNetConfig(
                image_size=16, base_channels=8, channel_mults=(1,),
                num_res_blocks=1, groups=4, time_dim=16, seed=0,
            )),
            linear_schedule(16),
        )
        # model_batch changes rng chunking => seeded outputs; refuse it.
        with pytest.raises(ValueError, match="model_batch"):
            PatternPaint(
                ddpm, deck, PatternPaintConfig(model_batch=32),
                executor=shared,
            )


class TestStagedApi:
    """plan/execute/finalize compose to exactly what run() produces."""

    def test_staged_matches_run(self, deck):
        backend = get_backend("rule", deck=deck)
        request = GenerationRequest(backend="rule", count=6, seed=13, deck=deck)
        monolithic = BatchExecutor(deck.engine()).run(request, backend=backend)

        executor = BatchExecutor(deck.engine())
        plan = executor.plan(request, backend=backend)
        proposal = executor.execute(plan)
        assert plan.proposal is proposal
        staged = executor.finalize(plan)

        assert staged.attempts == monolithic.attempts
        for a, b in zip(monolithic.clips, staged.clips):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(monolithic.legal, staged.legal)
        assert staged.admitted == monolithic.admitted
        assert len(staged.library) == len(monolithic.library)

    def test_finalize_before_execute_rejected(self, deck):
        executor = BatchExecutor(deck.engine())
        plan = executor.plan(
            GenerationRequest(backend="rule", count=2, seed=0, deck=deck)
        )
        with pytest.raises(ValueError, match="not been executed"):
            executor.finalize(plan)

    def test_plan_resolves_backend_and_library(self, deck):
        executor = BatchExecutor(deck.engine())
        plan = executor.plan(
            GenerationRequest(backend="rule", count=2, seed=0, deck=deck)
        )
        assert plan.backend.name == "rule"
        assert len(plan.library) == 0
        assert plan.proposal is None


class TestRunGeneration:
    def test_one_call_entry_point(self, deck):
        batch = run_generation(
            GenerationRequest(backend="rule", count=5, seed=1, deck=deck),
            jobs=2,
        )
        assert batch.backend == "rule"
        assert batch.attempts == 5
        assert batch.legal.all()
        assert batch.legality_rate == 1.0
        assert len(batch.library) <= 5
        assert batch.timings.total_seconds > 0.0


class TestSharedPoolRegistry:
    """Tentpole: one PoolRegistry backing several executors (worker lanes)."""

    def test_executors_share_one_pool_per_shape(self, deck):
        from repro.engine import PoolRegistry

        registry = PoolRegistry()
        first = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread"),
            pools=registry,
        )
        second = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread"),
            pools=registry,
        )
        raws = [np.zeros((32, 32), dtype=np.float32) for _ in range(4)]
        first.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        second.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        assert len(registry) == 1  # one ("thread", 2) pool between them
        lease = registry[("thread", 2)]
        assert registry.get(("thread", 2)) is lease
        registry.close()
        assert not registry

    def test_executor_close_leaves_shared_registry_alone(self, deck):
        from repro.engine import PoolRegistry

        registry = PoolRegistry()
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread"),
            pools=registry,
        )
        raws = [np.zeros((32, 32), dtype=np.float32) for _ in range(4)]
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        executor.close()  # shared registry: must NOT shut the pool down
        assert ("thread", 2) in registry
        # The pool is still usable by another lease after the close.
        clips, _ = executor.denoise_batch(
            raws, [None] * 4, np.random.default_rng(0)
        )
        assert len(clips) == 4
        registry.close()

    def test_owned_registry_still_closed_by_executor(self, deck):
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread")
        )
        raws = [np.zeros((32, 32), dtype=np.float32) for _ in range(4)]
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        assert executor.pools
        executor.close()
        assert not executor.pools

    def test_concurrent_executors_on_shared_pools_match_serial(self, deck):
        """Two threads driving two executors over one registry produce
        the same clips as the serial single-executor path."""
        from repro.engine import PoolRegistry

        rng_seed = 7
        raws = [
            np.random.default_rng(rng_seed + i).uniform(
                -1, 1, (32, 32)
            ).astype(np.float32)
            for i in range(8)
        ]
        serial = BatchExecutor(deck.engine(), ExecutorConfig(jobs=2))
        want, _ = serial.denoise_batch(
            raws, [None] * 8, np.random.default_rng(0)
        )
        serial.close()

        registry = PoolRegistry()
        results: dict[int, list] = {}

        def worker(idx):
            executor = BatchExecutor(
                deck.engine(), ExecutorConfig(jobs=2), pools=registry
            )
            clips, _ = executor.denoise_batch(
                raws, [None] * 8, np.random.default_rng(0)
            )
            results[idx] = clips

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        registry.close()
        for clips in results.values():
            assert len(clips) == len(want)
            for a, b in zip(want, clips):
                np.testing.assert_array_equal(a, b)

    def test_close_racing_leased_stage_is_safe(self, deck):
        from repro.engine import PoolRegistry

        registry = PoolRegistry()
        with registry.lease("thread", 2) as pool:
            registry.close()  # retires the leased pool instead of killing it
            assert pool.submit(lambda: 41 + 1).result() == 42
        assert not registry  # the last lessee shut it down on release
