"""Registry behavior: registration, lookup, listing, error paths."""

import numpy as np
import pytest

from repro.engine import (
    CandidateBatch,
    GenerationRequest,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.registry import GeneratorBackend

BUILTIN = {"patternpaint", "diffpattern", "cup", "rule", "solver"}


class TestListing:
    def test_builtins_registered(self):
        assert BUILTIN <= set(list_backends())

    def test_sorted(self):
        names = list_backends()
        assert names == sorted(names)


class TestLookup:
    def test_get_rule_backend(self):
        backend = get_backend("rule")
        assert backend.name == "rule"
        assert backend.deck.name  # has a usable deck

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("does-not-exist")
        with pytest.raises(ValueError, match="rule"):
            get_backend("does-not-exist")

    def test_factory_kwargs_forwarded(self):
        from repro.drc import basic_deck
        from repro.geometry import Grid

        deck = basic_deck(Grid(nm_per_px=32.0, width_px=16, height_px=16))
        backend = get_backend("rule", deck=deck)
        assert backend.deck is deck

    def test_builtin_backends_satisfy_protocol(self):
        assert isinstance(get_backend("rule"), GeneratorBackend)
        assert isinstance(get_backend("solver"), GeneratorBackend)


class _ConstantBackend:
    """Test double: proposes the same all-empty clip every time."""

    name = "test-constant"

    def __init__(self, deck=None):
        from repro.zoo.corpora import experiment_deck

        self._deck = deck or experiment_deck()

    @property
    def deck(self):
        return self._deck

    def propose(self, request, rng):
        clip = np.zeros((32, 32), dtype=np.uint8)
        return CandidateBatch.from_clips(
            [clip] * request.count, attempts=request.count
        )


class TestRegistration:
    def test_register_and_get(self):
        register_backend("test-constant", _ConstantBackend, overwrite=True)
        backend = get_backend("test-constant")
        assert backend.name == "test-constant"
        proposal = backend.propose(
            GenerationRequest(backend="test-constant", count=3),
            np.random.default_rng(0),
        )
        assert len(proposal.raws) == 3

    def test_duplicate_rejected_without_overwrite(self):
        register_backend("test-dup", _ConstantBackend, overwrite=True)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("test-dup", _ConstantBackend)

    def test_decorator_form(self):
        @register_backend("test-decorated", overwrite=True)
        def make_backend(**kwargs):
            return _ConstantBackend(**kwargs)

        assert "test-decorated" in list_backends()
        assert get_backend("test-decorated").name == "test-constant"
