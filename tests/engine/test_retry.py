"""Retry policy, circuit breaker, breaker board: the recovery primitives."""

import numpy as np
import pytest

from repro.engine import BreakerBoard, CircuitBreaker, RetryPolicy, TransientError


class TestRetryPolicy:
    def test_succeeds_first_try_without_sleeping(self):
        sleeps = []
        result = RetryPolicy().run(lambda: 42, sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_retries_transient_errors_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("hiccup")
            return "ok"

        retries = []
        result = RetryPolicy(max_attempts=3).run(
            flaky,
            on_retry=lambda attempt, error: retries.append(attempt),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert retries == [1, 2]  # 1-based retry numbers

    def test_exhausted_attempts_raise_the_last_error(self):
        def always_fails():
            raise TransientError("still broken")

        with pytest.raises(TransientError, match="still broken"):
            RetryPolicy(max_attempts=2).run(always_fails, sleep=lambda _: None)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def bug():
            calls["n"] += 1
            raise ValueError("programming error")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(bug, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_s=0.01, backoff_cap_s=0.05, jitter=0.0)
        delays = [policy.delay(k) for k in range(6)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert all(d == 0.05 for d in delays[3:])

    def test_jitter_is_deterministic_for_a_fixed_seed(self):
        policy = RetryPolicy(backoff_s=0.01, jitter=0.25)
        a = [policy.delay(k, np.random.default_rng(7)) for k in range(4)]
        b = [policy.delay(k, np.random.default_rng(7)) for k in range(4)]
        assert a == b
        # Jitter stays within the 1 +/- 0.25 band of the un-jittered delay.
        for k, delay in enumerate(a):
            base = policy.delay(k)
            assert 0.75 * base <= delay <= 1.25 * base

    def test_single_attempt_policy_never_retries(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise TransientError("once")

        with pytest.raises(TransientError):
            RetryPolicy(max_attempts=1).run(fails, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(retryable=("not-a-type",))


class _Clock:
    """Manual monotonic clock for breaker tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_threshold_failures_in_window(self):
        clock = _Clock()
        breaker = CircuitBreaker(3, window_s=10, cooldown_s=5, clock=clock)
        assert breaker.allow()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third one trips it
        assert not breaker.allow()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_old_failures_age_out_of_the_window(self):
        clock = _Clock()
        breaker = CircuitBreaker(3, window_s=10, cooldown_s=5, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 20.0  # both failures now outside the window
        assert not breaker.record_failure()
        assert breaker.allow()

    def test_half_open_trial_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(2, window_s=10, cooldown_s=5, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 6.0  # cooldown over: half-open trial allowed
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.snapshot()["failures"] == 0

    def test_half_open_trial_failure_counts_toward_reopening(self):
        clock = _Clock()
        breaker = CircuitBreaker(2, window_s=100, cooldown_s=5, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.trips == 2

    def test_snapshot_shape(self):
        breaker = CircuitBreaker()
        snap = breaker.snapshot()
        assert snap == {"state": "closed", "failures": 0, "trips": 0}


class TestBreakerBoard:
    def test_one_breaker_per_key_with_shared_parameters(self):
        board = BreakerBoard(threshold=2, window_s=10, cooldown_s=5)
        a = board.get(("process", 2))
        assert board.get(("process", 2)) is a
        assert board.get(("process", 4)) is not a
        assert len(board) == 2
        assert a.threshold == 2

    def test_trips_aggregate_across_breakers(self):
        clock = _Clock()
        board = BreakerBoard(threshold=1, window_s=10, cooldown_s=5,
                             clock=clock)
        board.get(("process", 2)).record_failure()
        board.get(("process", 4)).record_failure()
        assert board.trips == 2

    def test_snapshot_renders_pool_keys(self):
        board = BreakerBoard(threshold=1, window_s=10, cooldown_s=5)
        board.get(("process", 2)).record_failure()
        (entry,) = board.snapshot()
        assert entry["pool"] == "process"
        assert entry["workers"] == 2
        assert entry["state"] == "open"
        assert entry["trips"] == 1
