"""Cross-request model-batch packing: the pure plan and the executor stage."""

import numpy as np
import pytest

from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import basic_deck
from repro.engine import BatchExecutor, ExecutorConfig, pack_chunks
from repro.engine.modelpool import (
    inpaint_jobs,
    inpaint_jobs_packed,
    publish_model,
)
from repro.engine.packing import ChunkRef, PackedModelBatch, PackingPlan, chunk_sizes
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)

TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=5,
)


@pytest.fixture(scope="module")
def deck():
    return basic_deck(GRID)


@pytest.fixture(scope="module")
def ddpm():
    return Ddpm(TimeUnet(TINY), linear_schedule(20))


def _jobs(n, seed):
    rng = np.random.default_rng(seed)
    templates = [rng.integers(0, 2, (16, 16)).astype(np.uint8) for _ in range(n)]
    mask = np.zeros((16, 16), dtype=bool)
    mask[:, 8:] = True
    return templates, [mask] * n


class TestChunkSizes:
    def test_mirrors_serial_chunk_boundaries(self):
        assert chunk_sizes(0, 4) == []
        assert chunk_sizes(3, 4) == [3]
        assert chunk_sizes(4, 4) == [4]
        assert chunk_sizes(9, 4) == [4, 4, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(-1, 4)
        with pytest.raises(ValueError):
            chunk_sizes(3, 0)


class TestPackChunks:
    def test_small_requests_share_one_batch(self):
        plan = pack_chunks([3] * 8, 32)
        assert len(plan.batches) == 1
        assert plan.packed_jobs == 24
        assert plan.fill_ratio == 24 / 32
        assert [ref.entry for ref in plan.batches[0].chunks] == list(range(8))
        assert all(ref.chunk == 0 for ref in plan.batches[0].chunks)

    def test_first_fit_opens_new_batches(self):
        plan = pack_chunks([3, 5, 2], 4)
        # chunks: (0,0,3), (1,0,4), (1,1,1), (2,0,2)
        bins = [
            [(ref.entry, ref.chunk, ref.jobs) for ref in batch.chunks]
            for batch in plan.batches
        ]
        assert bins == [[(0, 0, 3), (1, 1, 1)], [(1, 0, 4)], [(2, 0, 2)]]
        assert all(batch.jobs <= plan.capacity for batch in plan.batches)

    def test_deterministic(self):
        counts = [7, 1, 12, 3, 3, 9]
        a, b = pack_chunks(counts, 5), pack_chunks(counts, 5)
        assert a.batches == b.batches
        assert a.num_chunks == sum(len(chunk_sizes(c, 5)) for c in counts)

    def test_every_job_packed_exactly_once(self):
        counts = [5, 9, 1, 4, 16]
        plan = pack_chunks(counts, 6)
        seen = {}
        for batch in plan.batches:
            for ref in batch.chunks:
                assert (ref.entry, ref.chunk) not in seen
                seen[(ref.entry, ref.chunk)] = ref.jobs
        for entry, count in enumerate(counts):
            sizes = chunk_sizes(count, 6)
            assert [seen[(entry, c)] for c in range(len(sizes))] == sizes

    def test_empty_and_zero_requests(self):
        assert pack_chunks([], 8).batches == []
        plan = pack_chunks([0, 3], 8)
        assert plan.packed_jobs == 3
        assert all(ref.entry == 1 for b in plan.batches for ref in b.chunks)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            pack_chunks([3], 0)


class TestRunModelPacked:
    def _fns(self, ddpm):
        config = InpaintConfig(num_steps=3)

        def model_fn(templates, masks, rng):
            return inpaint_jobs(
                ddpm.model, ddpm.schedule, templates, masks, rng, config
            )

        def packed_fn(seg_t, seg_m, seg_rngs):
            return inpaint_jobs_packed(
                ddpm.model, ddpm.schedule, seg_t, seg_m, seg_rngs, config
            )

        return model_fn, packed_fn, config

    def test_packed_bit_identical_to_serial_per_request(self, ddpm, deck):
        """Tentpole: packing changes batch composition, never outputs."""
        model_fn, packed_fn, _ = self._fns(ddpm)
        job_lists = [_jobs(3, 10), _jobs(5, 11), _jobs(2, 12)]
        with BatchExecutor(
            deck.engine(), ExecutorConfig(model_batch=4)
        ) as executor:
            serial = [
                executor.run_model_batched(
                    model_fn, t, m, np.random.default_rng(100 + i)
                )[0]
                for i, (t, m) in enumerate(job_lists)
            ]
            result = executor.run_model_packed(
                packed_fn,
                job_lists,
                [np.random.default_rng(100 + i) for i in range(3)],
            )
        assert len(result.plan.batches) < result.plan.num_chunks  # packed
        for want, got in zip(serial, result.outputs):
            assert len(want) == len(got)
            for a, b in zip(want, got):
                np.testing.assert_array_equal(
                    a.view(np.uint32), b.view(np.uint32)
                )

    def test_scheduler_emitted_plan_round_trips(self, ddpm, deck):
        model_fn, packed_fn, _ = self._fns(ddpm)
        job_lists = [_jobs(2, 20), _jobs(2, 21)]
        plan = pack_chunks([2, 2], 4)
        with BatchExecutor(
            deck.engine(), ExecutorConfig(model_batch=4)
        ) as executor:
            result = executor.run_model_packed(
                packed_fn,
                job_lists,
                [np.random.default_rng(i) for i in range(2)],
                packing=plan,
            )
            serial = [
                executor.run_model_batched(
                    model_fn, t, m, np.random.default_rng(i)
                )[0]
                for i, (t, m) in enumerate(job_lists)
            ]
        assert result.plan is plan
        for want, got in zip(serial, result.outputs):
            for a, b in zip(want, got):
                np.testing.assert_array_equal(a, b)

    def test_mismatched_plan_rejected(self, ddpm, deck):
        _, packed_fn, _ = self._fns(ddpm)
        bogus = PackingPlan(
            capacity=4,
            batches=[PackedModelBatch(chunks=[ChunkRef(0, 0, 3)])],
        )
        with BatchExecutor(
            deck.engine(), ExecutorConfig(model_batch=4)
        ) as executor:
            with pytest.raises(ValueError, match="packing plan"):
                executor.run_model_packed(
                    packed_fn,
                    [_jobs(2, 0)],
                    [np.random.default_rng(0)],
                    packing=bogus,
                )

    def test_seconds_attributed_per_request(self, ddpm, deck):
        _, packed_fn, _ = self._fns(ddpm)
        job_lists = [_jobs(3, 30), _jobs(1, 31)]
        with BatchExecutor(
            deck.engine(), ExecutorConfig(model_batch=8)
        ) as executor:
            result = executor.run_model_packed(
                packed_fn, job_lists,
                [np.random.default_rng(i) for i in range(2)],
            )
        assert all(s > 0 for s in result.seconds)
        # 3-job request carries three times the 1-job request's share.
        assert result.seconds[0] == pytest.approx(3 * result.seconds[1])

    def test_process_pool_packed_batches(self, ddpm, deck, tmp_path):
        """Packed batches fan out to process workers bit-identically."""
        model_fn, packed_fn, config = self._fns(ddpm)
        from repro.engine.modelpool import InpaintModelSpec

        spec = InpaintModelSpec(
            checkpoint=publish_model(ddpm.model, tmp_path),
            betas=np.ascontiguousarray(ddpm.schedule.betas).tobytes(),
            config=config,
        )
        job_lists = [_jobs(3, 40), _jobs(3, 41)]
        rngs = lambda: [np.random.default_rng(i) for i in range(2)]  # noqa: E731
        with BatchExecutor(
            deck.engine(), ExecutorConfig(model_batch=3, model_jobs=2)
        ) as executor:
            pooled = executor.run_model_packed(
                packed_fn, job_lists, rngs(), spec=spec
            )
            serial = executor.run_model_packed(packed_fn, job_lists, rngs())
        assert len(pooled.plan.batches) == 2
        for want, got in zip(serial.outputs, pooled.outputs):
            for a, b in zip(want, got):
                np.testing.assert_array_equal(
                    a.view(np.uint32), b.view(np.uint32)
                )
