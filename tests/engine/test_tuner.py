"""The self-tuning executor's cost model (:mod:`repro.engine.tuner`).

Covers mode resolution (config vs ``$REPRO_EXEC_MODE``), the
explore/exploit policy, the persistent store's round-trip and its
fingerprint staleness guard, and the restart warm-start: a fresh tuner
over a populated store exploits from its very first decision.
"""

import json

import pytest

from repro.engine import ExecutionTuner, ExecutorConfig, TunerDecision
from repro.engine.tuner import (
    EXEC_MODE_ENV,
    EXEC_MODES,
    pow2_bucket,
    resolve_exec_mode,
)

SIG = ("model", "unet-abc", 32, 25, 2, 4)


class TestResolveExecMode:
    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(EXEC_MODE_ENV, raising=False)
        assert resolve_exec_mode(None) == "auto"
        assert resolve_exec_mode("auto") == "auto"

    def test_explicit_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV, "pooled")
        assert resolve_exec_mode("serial") == "serial"

    def test_env_fills_in_when_config_is_auto(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV, "packed")
        assert resolve_exec_mode("auto") == "packed"
        assert resolve_exec_mode(None) == "packed"

    def test_env_is_case_insensitive_and_stripped(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV, "  Serial ")
        assert resolve_exec_mode(None) == "serial"

    def test_blank_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV, "   ")
        assert resolve_exec_mode(None) == "auto"

    def test_bad_values_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_exec_mode("turbo")
        monkeypatch.setenv(EXEC_MODE_ENV, "turbo")
        with pytest.raises(ValueError):
            resolve_exec_mode(None)

    def test_executor_config_validates_exec_mode(self):
        for mode in EXEC_MODES:
            assert ExecutorConfig(exec_mode=mode).exec_mode == mode
        with pytest.raises(ValueError):
            ExecutorConfig(exec_mode="warp")


class TestPow2Bucket:
    def test_rounds_up_to_powers_of_two(self):
        assert [pow2_bucket(n) for n in (0, 1, 2, 3, 4, 5, 8, 9, 100)] == [
            1, 1, 2, 4, 4, 8, 8, 16, 128,
        ]


class TestChoose:
    def test_single_candidate_is_only(self):
        tuner = ExecutionTuner()
        decision = tuner.choose(SIG, ["serial"])
        assert decision == TunerDecision("serial", "only", SIG)
        assert not decision.explored and not decision.exploited

    def test_cold_signature_explores_in_candidate_order(self):
        tuner = ExecutionTuner()
        first = tuner.choose(SIG, ["pooled", "serial"])
        assert first.mode == "pooled" and first.explored  # legacy default
        tuner.record(SIG, "pooled", 1.0, jobs=4)
        second = tuner.choose(SIG, ["pooled", "serial"])
        assert second.mode == "serial" and second.explored

    def test_exploits_lowest_mean_per_job(self):
        tuner = ExecutionTuner()
        tuner.record(SIG, "pooled", 4.0, jobs=4)  # 1.0 s/job
        tuner.record(SIG, "serial", 2.0, jobs=4)  # 0.5 s/job
        decision = tuner.choose(SIG, ["pooled", "serial"])
        assert decision.mode == "serial" and decision.exploited

    def test_jobs_normalisation(self):
        tuner = ExecutionTuner()
        tuner.record(SIG, "pooled", 10.0, jobs=100)  # 0.1 s/job
        tuner.record(SIG, "serial", 1.0, jobs=1)  # 1.0 s/job
        assert tuner.choose(SIG, ["serial", "pooled"]).mode == "pooled"

    def test_forced_mode_bypasses_the_model(self):
        tuner = ExecutionTuner()
        tuner.record(SIG, "serial", 0.1)
        tuner.record(SIG, "pooled", 9.9)
        decision = tuner.choose(
            SIG, ["serial", "pooled"], requested="pooled"
        )
        assert decision.mode == "pooled" and decision.reason == "forced"

    def test_unavailable_forced_mode_falls_back_to_auto(self):
        tuner = ExecutionTuner()
        decision = tuner.choose(SIG, ["serial"], requested="packed")
        assert decision.mode == "serial" and decision.reason == "only"

    def test_signatures_do_not_cross_pollinate(self):
        other = ("model", "unet-def", 64, 25, 2, 4)
        tuner = ExecutionTuner()
        tuner.record(SIG, "pooled", 0.1)
        tuner.record(SIG, "serial", 0.2)
        assert tuner.choose(other, ["pooled", "serial"]).explored

    def test_counters_and_last_decision(self):
        tuner = ExecutionTuner()
        tuner.choose(SIG, ["pooled", "serial"])  # explore
        tuner.record(SIG, "pooled", 1.0)
        tuner.record(SIG, "serial", 2.0)
        tuner.choose(SIG, ["pooled", "serial"])  # exploit
        tuner.choose(SIG, ["pooled", "serial"], requested="serial")
        snap = tuner.snapshot()
        assert snap["explores"] == 1
        assert snap["exploits"] == 1
        assert snap["forced"] == 1
        assert snap["decisions"] == {"pooled": 2, "serial": 1}
        assert tuner.last_decision.mode == "serial"

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            ExecutionTuner().choose(SIG, [])


class TestPersistence:
    def test_round_trip(self, tmp_path):
        tuner = ExecutionTuner(store_dir=tmp_path)
        tuner.record(SIG, "pooled", 4.0, jobs=4)
        tuner.record(SIG, "serial", 2.0, jobs=4)
        assert tuner.save() == tmp_path / "tuner.json"

        fresh = ExecutionTuner(store_dir=tmp_path)
        assert fresh.loaded == 1
        assert fresh.observations(SIG) == {
            "pooled": (1, 1.0),
            "serial": (1, 0.5),
        }

    def test_restart_exploits_immediately(self, tmp_path):
        tuner = ExecutionTuner(store_dir=tmp_path)
        tuner.record(SIG, "pooled", 4.0, jobs=4)
        tuner.record(SIG, "serial", 2.0, jobs=4)
        tuner.save()

        fresh = ExecutionTuner(store_dir=tmp_path)
        first = fresh.choose(SIG, ["pooled", "serial"])
        # No re-exploration: the warm store picks the measured winner on
        # the very first decision, a non-default choice.
        assert first.mode == "serial" and first.exploited

    def test_tampered_entry_is_skipped(self, tmp_path):
        tuner = ExecutionTuner(store_dir=tmp_path)
        tuner.record(SIG, "serial", 1.0)
        path = tuner.save()

        payload = json.loads(path.read_text())
        (digest,) = payload["entries"]
        payload["entries"][digest]["signature"][1] = "unet-evil"
        path.write_text(json.dumps(payload))

        fresh = ExecutionTuner(store_dir=tmp_path)
        assert fresh.loaded == 0
        assert fresh.observations(SIG) == {}

    def test_garbage_and_wrong_format_files_load_nothing(self, tmp_path):
        ExecutionTuner.store_path(tmp_path).write_text("{not json")
        assert ExecutionTuner(store_dir=tmp_path).loaded == 0
        ExecutionTuner.store_path(tmp_path).write_text(
            json.dumps({"format": 99, "entries": {}})
        )
        assert ExecutionTuner(store_dir=tmp_path).loaded == 0

    def test_missing_store_is_a_cold_start(self, tmp_path):
        tuner = ExecutionTuner(store_dir=tmp_path / "nowhere")
        assert tuner.loaded == 0 and len(tuner) == 0

    def test_in_memory_measurements_win_over_disk(self, tmp_path):
        stale = ExecutionTuner()
        stale.record(SIG, "serial", 9.0)
        stale.save(tmp_path)

        tuner = ExecutionTuner()
        tuner.record(SIG, "serial", 1.0)
        assert tuner.load(tmp_path) == 0
        assert tuner.observations(SIG)["serial"] == (1, 1.0)

    def test_save_without_dir_is_memory_only(self):
        assert ExecutionTuner().save() is None
