"""Adapter parity: each backend produces identical clips through the
registry/executor path as through its native API, for a fixed seed.

Model-backed backends use tiny *untrained* models: parity is about wiring
and rng discipline, not sample quality.
"""

import numpy as np
import pytest

from repro.baselines.cup import CupConfig, CupGenerator, CupModel
from repro.baselines.diffpattern import (
    DiffPatternGenerator,
    DiscreteDiffusion,
    DiscreteDiffusionConfig,
    default_diffpattern_unet,
)
from repro.baselines.rule_based import generate_library
from repro.baselines.solver import SolverSettings, SquishLegalizer
from repro.baselines.topologies import random_topology
from repro.core import PatternPaint, PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import advanced_deck, basic_deck
from repro.engine import BatchExecutor, GenerationRequest, get_backend
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)
SETTINGS = SolverSettings(max_iter=40, discrete_restarts=1)


@pytest.fixture(scope="module")
def deck():
    return basic_deck(GRID)


def _run_backend(backend, count, seed, deck):
    executor = BatchExecutor(deck.engine())
    request = GenerationRequest(backend=backend.name, count=count, seed=seed, deck=deck)
    return executor.run(request, backend=backend, rng=np.random.default_rng(seed))


def _assert_same_clips(native, engine_clips):
    assert len(native) == len(engine_clips)
    for a, b in zip(native, engine_clips):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestRuleParity:
    def test_matches_generate_library(self, deck):
        native = generate_library(deck, 6, np.random.default_rng(5))
        batch = _run_backend(get_backend("rule", deck=deck), 6, 5, deck)
        _assert_same_clips(native, batch.legal_clips)
        assert batch.attempts == 6
        assert batch.legal.all()


class TestSolverParity:
    def test_matches_manual_loop(self, deck):
        cells = 4
        rng = np.random.default_rng(3)
        legalizer = SquishLegalizer(deck, SETTINGS)
        native = []
        for _ in range(5):
            topology = random_topology(cells, rng)
            result = legalizer.legalize(
                topology,
                width_px=deck.grid.width_px,
                height_px=deck.grid.height_px,
                rng=rng,
            )
            if result.success and result.clip is not None:
                native.append(result.clip)

        backend = get_backend("solver", deck=deck, settings=SETTINGS, cells=cells)
        batch = _run_backend(backend, 5, 3, deck)
        _assert_same_clips(native, batch.legal_clips)
        assert batch.attempts == 5


class TestCupParity:
    def test_matches_native_generator(self, deck):
        model = CupModel(CupConfig(image_size=16, seed=9))
        native_legal, native_attempts, _ = CupGenerator(
            model, deck, SETTINGS
        ).generate(4, np.random.default_rng(7))

        backend = get_backend("cup", deck=deck, settings=SETTINGS, model=model)
        batch = _run_backend(backend, 4, 7, deck)
        _assert_same_clips(native_legal, batch.legal_clips)
        assert batch.attempts == native_attempts


class TestDiffPatternParity:
    def test_matches_native_generator(self, deck):
        diffusion = DiscreteDiffusion(
            default_diffpattern_unet(image_size=16, seed=5),
            DiscreteDiffusionConfig(num_steps=6),
        )
        native_legal, native_attempts, _ = DiffPatternGenerator(
            diffusion, deck, SETTINGS
        ).generate(4, np.random.default_rng(13))

        backend = get_backend(
            "diffpattern", deck=deck, settings=SETTINGS, model=diffusion
        )
        batch = _run_backend(backend, 4, 13, deck)
        _assert_same_clips(native_legal, batch.legal_clips)
        assert batch.attempts == native_attempts


class TestPatternPaintParity:
    @pytest.fixture(scope="class")
    def pipeline_parts(self, deck):
        cfg = UNetConfig(
            image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
            groups=4, time_dim=8, attention=False, seed=0,
        )
        ddpm = Ddpm(TimeUnet(cfg), linear_schedule(20))
        config = PatternPaintConfig(
            inpaint=InpaintConfig(num_steps=3), variations_per_mask=1
        )
        starters = generate_library(deck, 2, np.random.default_rng(21))
        return ddpm, config, starters

    def test_matches_initial_generation(self, deck, pipeline_parts):
        ddpm, config, starters = pipeline_parts
        pipeline = PatternPaint(ddpm, deck, config)
        library, stats, _ = pipeline.initial_generation(
            starters, np.random.default_rng(4)
        )

        backend = get_backend(
            "patternpaint", deck=deck, ddpm=ddpm, config=config
        )
        request = GenerationRequest(
            backend="patternpaint",
            count=stats.generated,  # starters x 10 masks x 1 variation
            seed=4,
            deck=deck,
            templates=tuple(starters),
        )
        batch = BatchExecutor(deck.engine()).run(
            request, backend=backend, rng=np.random.default_rng(4)
        )
        assert batch.attempts == stats.generated
        assert batch.legal_count == stats.legal
        assert len(batch.library) == len(library)
        for a, b in zip(library, batch.library):
            np.testing.assert_array_equal(a, b)


class TestPipelinePoolDeterminism:
    """Satellite: the full pipeline is seed-stable under worker pools."""

    def test_pooled_run_matches_serial_run(self, deck, ):
        cfg = UNetConfig(
            image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
            groups=4, time_dim=8, attention=False, seed=2,
        )
        starters = generate_library(advanced_deck(GRID), 2, np.random.default_rng(8))

        def run(jobs):
            ddpm = Ddpm(TimeUnet(cfg), linear_schedule(20))
            pipeline = PatternPaint(
                ddpm,
                advanced_deck(GRID),
                PatternPaintConfig(
                    inpaint=InpaintConfig(num_steps=3),
                    variations_per_mask=1,
                    samples_per_iteration=4,
                    select_k=2,
                    jobs=jobs,
                ),
            )
            return pipeline.run(starters, np.random.default_rng(6), iterations=1)

        serial = run(1)
        pooled = run(3)
        assert len(serial.library) == len(pooled.library)
        for a, b in zip(serial.library, pooled.library):
            np.testing.assert_array_equal(a, b)
        assert [s.generated for s in serial.stats] == [
            s.generated for s in pooled.stats
        ]
        assert [s.legal for s in serial.stats] == [s.legal for s in pooled.stats]
