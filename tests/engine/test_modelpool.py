"""Model-stage fan-out and the executor's persistent worker pools."""

import numpy as np
import pytest

from repro.core import PatternPaint, PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, inpaint, linear_schedule
from repro.drc import basic_deck
from repro.engine import BatchExecutor, ExecutorConfig
from repro.engine.modelpool import (
    InpaintModelSpec,
    publish_model,
    run_inpaint_chunk,
)
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig, inference_mode

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)

TINY = UNetConfig(
    image_size=16, base_channels=8, channel_mults=(1,), num_res_blocks=1,
    groups=4, time_dim=8, attention=False, seed=5,
)


@pytest.fixture(scope="module")
def deck():
    return basic_deck(GRID)


@pytest.fixture(scope="module")
def ddpm():
    return Ddpm(TimeUnet(TINY), linear_schedule(20))


@pytest.fixture(scope="module")
def jobs16():
    rng = np.random.default_rng(2)
    templates = [
        rng.integers(0, 2, (16, 16)).astype(np.uint8) for _ in range(8)
    ]
    mask = np.zeros((16, 16), dtype=bool)
    mask[:, 8:] = True
    return templates, [mask] * 8


class TestPublishRehydrate:
    def test_publish_is_content_addressed(self, ddpm, tmp_path):
        a = publish_model(ddpm.model, tmp_path)
        b = publish_model(ddpm.model, tmp_path)
        assert a == b
        other = TimeUnet(UNetConfig(**{**TINY.__dict__, "seed": 6}))
        assert publish_model(other, tmp_path) != a

    def test_worker_chunk_matches_direct_inpaint(self, ddpm, jobs16, tmp_path):
        templates, masks = jobs16
        config = InpaintConfig(num_steps=3)
        spec = InpaintModelSpec(
            checkpoint=publish_model(ddpm.model, tmp_path),
            betas=np.ascontiguousarray(ddpm.schedule.betas).tobytes(),
            config=config,
        )
        out = run_inpaint_chunk(
            spec, templates[:4], masks[:4], np.random.default_rng(1)
        )
        known = (np.stack(templates[:4]).astype(np.float32) * 2.0 - 1.0)[:, None]
        with inference_mode(ddpm.model):
            ref = inpaint(
                ddpm.model, ddpm.schedule, known, masks[0],
                np.random.default_rng(1), config,
            )
        for got, want in zip(out, ref[:, 0]):
            np.testing.assert_array_equal(
                got.view(np.uint32), want.view(np.uint32)
            )


class TestPooledModelStage:
    def _run(self, ddpm, deck, jobs16, model_jobs):
        templates, masks = jobs16
        pipeline = PatternPaint(
            ddpm,
            deck,
            PatternPaintConfig(
                inpaint=InpaintConfig(num_steps=3),
                model_batch=2,  # 8 jobs -> 4 chunks
                model_jobs=model_jobs,
            ),
        )
        with pipeline:
            return pipeline.inpaint_batch(
                templates, masks, np.random.default_rng(9)
            )

    def test_pooled_bit_identical_to_serial(self, ddpm, deck, jobs16):
        """Satellite: pooled-vs-serial run_model_batched determinism."""
        serial, _ = self._run(ddpm, deck, jobs16, model_jobs=1)
        pooled, _ = self._run(ddpm, deck, jobs16, model_jobs=2)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a.view(np.uint32), b.view(np.uint32))


class TestExecModeSweep:
    """Tentpole guard: every exec mode is bit-identical at engine level.

    The self-tuning executor may only ever choose among strategies that
    produce identical bits; this sweep forces each mode (plus ``auto``,
    which explores/exploits between them) over one workload and compares
    outputs bitwise.
    """

    def _run(self, ddpm, deck, jobs16, exec_mode):
        templates, masks = jobs16
        pipeline = PatternPaint(
            ddpm,
            deck,
            PatternPaintConfig(
                inpaint=InpaintConfig(num_steps=3),
                model_batch=2,  # 8 jobs -> 4 chunks
                model_jobs=2,
                exec_mode=exec_mode,
            ),
        )
        with pipeline:
            outputs, _ = pipeline.inpaint_batch(
                templates, masks, np.random.default_rng(9)
            )
        return outputs

    def test_all_modes_bit_identical(self, ddpm, deck, jobs16):
        from repro.engine import EXEC_MODES

        reference = self._run(ddpm, deck, jobs16, "serial")
        for mode in EXEC_MODES:
            if mode == "serial":
                continue
            outputs = self._run(ddpm, deck, jobs16, mode)
            assert len(outputs) == len(reference)
            for got, want in zip(outputs, reference):
                np.testing.assert_array_equal(
                    got.view(np.uint32), want.view(np.uint32),
                    err_msg=f"exec_mode={mode!r} diverged from serial",
                )

    def test_auto_explores_then_exploits(self, ddpm, deck, jobs16, monkeypatch):
        from repro.engine import BatchExecutor, ExecutionTuner, ExecutorConfig
        from repro.engine.modelpool import (
            InpaintModelSpec,
            publish_model,
            run_inpaint_chunk,
        )
        from repro.engine.tuner import EXEC_MODE_ENV

        # Genuine auto policy: the CI matrix's forced mode would turn
        # every decision into "forced" and test nothing.
        monkeypatch.delenv(EXEC_MODE_ENV, raising=False)

        templates, masks = jobs16
        config = InpaintConfig(num_steps=2)
        spec = InpaintModelSpec(
            checkpoint=publish_model(ddpm.model),
            betas=np.ascontiguousarray(ddpm.schedule.betas).tobytes(),
            config=config,
        )
        tuner = ExecutionTuner()
        executor = BatchExecutor(
            deck.engine(),
            ExecutorConfig(model_batch=4, model_jobs=2, exec_mode="auto"),
            tuner=tuner,
        )
        try:
            for _ in range(3):
                executor.run_model_batched(
                    lambda t, m, r: run_inpaint_chunk(spec, t, m, r),
                    templates, masks, np.random.default_rng(3), spec=spec,
                )
        finally:
            executor.close()
        snap = tuner.snapshot()
        # Two candidates: both explored once (pooled first, the legacy
        # default), then the measured winner exploited.
        assert snap["explores"] == 2
        assert snap["exploits"] == 1
        assert tuner.last_decision.exploited


class TestPersistentPools:
    def test_thread_pool_reused_across_calls(self, deck):
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread")
        )
        raws = [np.zeros((16, 16), dtype=np.float32) for _ in range(4)]
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        first = executor._pools.get(("thread", 2))
        assert first is not None
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        assert executor._pools.get(("thread", 2)) is first
        executor.close()
        assert not executor._pools

    def test_stage_pools_sized_independently(self, deck):
        """The model stage must not widen the denoise/DRC worker bound."""
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread", model_jobs=6)
        )
        raws = [np.zeros((16, 16), dtype=np.float32) for _ in range(4)]
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        lease = executor._pools[("thread", 2)]
        assert lease.pool._max_workers == 2
        executor.close()

    def test_context_manager_closes(self, deck):
        with BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread")
        ) as executor:
            executor.denoise_batch(
                [np.zeros((16, 16), dtype=np.float32)] * 4,
                [None] * 4,
                np.random.default_rng(0),
            )
            assert executor._pools
        assert not executor._pools

    def test_closed_executor_reopens_lazily(self, deck):
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread")
        )
        raws = [np.zeros((16, 16), dtype=np.float32) for _ in range(4)]
        executor.denoise_batch(raws, [None] * 4, np.random.default_rng(0))
        executor.close()
        clips, _ = executor.denoise_batch(
            raws, [None] * 4, np.random.default_rng(0)
        )
        assert len(clips) == 4
        executor.close()

    def test_model_jobs_config_validation(self):
        with pytest.raises(ValueError):
            ExecutorConfig(model_jobs=0)

    def test_check_batch_uses_persistent_pool(self, deck):
        executor = BatchExecutor(
            deck.engine(), ExecutorConfig(jobs=2, pool="thread", use_cache=False)
        )
        clips = [
            np.random.default_rng(i).integers(0, 2, (16, 16)).astype(np.uint8)
            for i in range(6)
        ]
        mask, _ = executor.check_batch(clips)
        assert executor._pools.get(("thread", 2)) is not None
        serial = [deck.engine().is_clean(c) for c in clips]
        assert list(mask) == serial
        executor.close()
