"""GenerationRequest validation, identity and compatibility keys."""

import numpy as np
import pytest

from repro.drc import advanced_deck, basic_deck
from repro.engine import GenerationRequest
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


class TestValidation:
    """Satellite: bad count / unknown backend fail at construction."""

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count must be a positive"):
            GenerationRequest(backend="rule", count=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count must be a positive"):
            GenerationRequest(backend="rule", count=-5)

    def test_non_integer_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            GenerationRequest(backend="rule", count=2.5)

    def test_unknown_backend_rejected_with_registered_names(self):
        with pytest.raises(ValueError, match="unknown backend") as excinfo:
            GenerationRequest(backend="definitely-not-a-backend", count=1)
        # The message tells the caller what *would* work.
        assert "rule" in str(excinfo.value)

    def test_empty_backend_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            GenerationRequest(backend="", count=1)

    def test_user_registered_backend_accepted(self):
        from repro.engine import CandidateBatch, register_backend

        class TinyBackend:
            name = "test-request-validation"

            def __init__(self, deck=None):
                self._deck = deck

            @property
            def deck(self):
                return self._deck

            def propose(self, request, rng):
                return CandidateBatch.from_clips([], attempts=request.count)

        register_backend(
            "test-request-validation", TinyBackend, overwrite=True
        )
        request = GenerationRequest(
            backend="test-request-validation", count=3
        )
        assert request.backend == "test-request-validation"

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError, match="templates"):
            GenerationRequest(backend="rule", count=1, templates=())


class TestIdentity:
    def test_request_ids_unique_by_default(self):
        a = GenerationRequest(backend="rule", count=1)
        b = GenerationRequest(backend="rule", count=1)
        assert a.request_id and b.request_id
        assert a.request_id != b.request_id

    def test_explicit_request_id_kept(self):
        request = GenerationRequest(backend="rule", count=1, request_id="r-1")
        assert request.request_id == "r-1"

    def test_priority_defaults_to_zero(self):
        assert GenerationRequest(backend="rule", count=1).priority == 0


class TestCompatibilityKey:
    def test_same_backend_deck_shape_compatible(self):
        deck = advanced_deck(GRID)
        a = GenerationRequest(backend="rule", count=5, seed=1, deck=deck)
        b = GenerationRequest(backend="rule", count=9, seed=2, deck=deck,
                              priority=3)
        # seed/count/priority/id do not participate.
        assert a.compatibility_key() == b.compatibility_key()

    def test_equal_decks_compatible_across_instances(self):
        a = GenerationRequest(backend="rule", count=1, deck=advanced_deck(GRID))
        b = GenerationRequest(backend="rule", count=1, deck=advanced_deck(GRID))
        assert a.compatibility_key() == b.compatibility_key()

    def test_different_backend_or_deck_incompatible(self):
        deck = advanced_deck(GRID)
        base = GenerationRequest(backend="rule", count=1, deck=deck)
        other_backend = GenerationRequest(backend="solver", count=1, deck=deck)
        other_deck = GenerationRequest(
            backend="rule", count=1, deck=basic_deck(GRID)
        )
        assert base.compatibility_key() != other_backend.compatibility_key()
        assert base.compatibility_key() != other_deck.compatibility_key()

    def test_template_shape_participates(self):
        small = GenerationRequest(
            backend="rule", count=1,
            templates=(np.zeros((16, 16), dtype=np.uint8),),
        )
        large = GenerationRequest(
            backend="rule", count=1,
            templates=(np.zeros((32, 32), dtype=np.uint8),),
        )
        assert small.clip_shape == (16, 16)
        assert small.compatibility_key() != large.compatibility_key()

    def test_params_participate(self):
        a = GenerationRequest(backend="rule", count=1, params={"k": 1})
        b = GenerationRequest(backend="rule", count=1, params={"k": 2})
        assert a.compatibility_key() != b.compatibility_key()

    def test_key_is_hashable(self):
        deck = advanced_deck(GRID)
        key = GenerationRequest(
            backend="rule", count=1, deck=deck
        ).compatibility_key()
        assert hash(key) == hash(key)
