"""Unit tests for zoo corpora and artifact plumbing (no training here)."""

import numpy as np
import pytest

from repro.zoo import (
    EXPERIMENT_GRID,
    VARIANTS,
    baseline_training_set,
    experiment_deck,
    model_config,
    pretrain_corpus,
    starter_patterns,
)


class TestCorpora:
    def test_experiment_grid_is_32px(self):
        assert EXPERIMENT_GRID.shape == (32, 32)

    def test_starters_are_deterministic_and_clean(self):
        a = starter_patterns(5)
        b = starter_patterns(5)
        engine = experiment_deck().engine()
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a, clip_b)
            assert engine.is_clean(clip_a)

    def test_pretrain_corpus_is_from_other_node(self):
        clips = pretrain_corpus(5)
        assert len(clips) == 5
        assert clips[0].shape == EXPERIMENT_GRID.shape
        # The pretraining node uses pitch 10 / widths {2,4,6}: its clips
        # must NOT all satisfy the advanced (target) deck.
        engine = experiment_deck().engine()
        assert not all(engine.is_clean(clip) for clip in clips)

    def test_baseline_training_set_deterministic(self):
        a = baseline_training_set(4)
        b = baseline_training_set(4)
        for clip_a, clip_b in zip(a, b):
            np.testing.assert_array_equal(clip_a, clip_b)


class TestArtifactPlumbing:
    def test_variants_declared(self):
        assert set(VARIANTS) == {"sd1", "sd2"}

    def test_model_config_differs_between_variants(self):
        sd1 = model_config("sd1")
        sd2 = model_config("sd2")
        assert sd1.base_channels != sd2.base_channels
        assert sd1.seed != sd2.seed

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            model_config("sd3")

    def test_artifacts_dir_env_override(self, tmp_path, monkeypatch):
        from repro.zoo import artifacts_dir

        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "alt"))
        assert artifacts_dir() == tmp_path / "alt"
        assert (tmp_path / "alt").exists()
