"""Unit + integration tests for free-size outpainting expansion."""

import numpy as np
import pytest

from repro.core import ExpansionConfig, expand_pattern, expansion_windows
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.nn import TimeUnet, UNetConfig


def tiny_ddpm(size=16, seed=0):
    cfg = UNetConfig(
        image_size=size, base_channels=8, channel_mults=(1,), num_res_blocks=1,
        groups=4, time_dim=8, attention=False, seed=seed,
    )
    return Ddpm(TimeUnet(cfg), linear_schedule(20))


def wire_starter(size=16):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, 4:7] = 1
    img[:, 11:14] = 1
    return img


class TestWindowSchedule:
    def test_covers_whole_canvas(self):
        windows = expansion_windows((32, 48), 16)
        covered = np.zeros((32, 48), dtype=bool)
        for y0, x0 in windows:
            covered[y0 : y0 + 16, x0 : x0 + 16] = True
        assert covered.all()

    def test_first_window_is_origin(self):
        assert expansion_windows((32, 32), 16)[0] == (0, 0)

    def test_half_overlap_steps(self):
        windows = expansion_windows((32, 32), 16)
        xs = sorted({x for _, x in windows})
        assert xs == [0, 8, 16]

    def test_exact_fit_single_window(self):
        assert expansion_windows((16, 16), 16) == [(0, 0)]

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            expansion_windows((8, 32), 16)


class TestExpansion:
    def test_preserves_seed_region_and_fills_canvas(self):
        ddpm = tiny_ddpm()
        starter = wire_starter()
        canvas = expand_pattern(
            ddpm, starter, (32, 32), np.random.default_rng(0),
            ExpansionConfig(inpaint=InpaintConfig(num_steps=4)),
        )
        assert canvas.shape == (32, 32)
        assert canvas.dtype == np.uint8
        np.testing.assert_array_equal(canvas[:16, :16], starter)

    def test_rectangular_canvas(self):
        ddpm = tiny_ddpm()
        canvas = expand_pattern(
            ddpm, wire_starter(), (16, 40), np.random.default_rng(1),
            ExpansionConfig(inpaint=InpaintConfig(num_steps=3)),
        )
        assert canvas.shape == (16, 40)

    def test_starter_shape_validated(self):
        ddpm = tiny_ddpm()
        with pytest.raises(ValueError, match="window"):
            expand_pattern(
                ddpm, np.zeros((8, 8), dtype=np.uint8), (32, 32),
                np.random.default_rng(0),
            )

    def test_deterministic_given_rng(self):
        ddpm = tiny_ddpm()
        starter = wire_starter()
        cfg = ExpansionConfig(inpaint=InpaintConfig(num_steps=3))
        a = expand_pattern(ddpm, starter, (24, 24), np.random.default_rng(7), cfg)
        b = expand_pattern(ddpm, starter, (24, 24), np.random.default_rng(7), cfg)
        np.testing.assert_array_equal(a, b)


class TestExpansionWithTrainedModel:
    @pytest.mark.parametrize("canvas_shape", [(32, 64)])
    def test_expansion_with_zoo_model_produces_track_structure(self, canvas_shape):
        """With the cached finetuned model, expanded canvases keep vertical
        track structure (columns are far from uniform noise)."""
        pytest.importorskip("repro.zoo")
        from repro.zoo import finetuned, starter_patterns

        ddpm = finetuned("sd1")
        starter = starter_patterns(1)[0]
        canvas = expand_pattern(
            ddpm, starter, canvas_shape, np.random.default_rng(0),
            ExpansionConfig(inpaint=InpaintConfig(num_steps=12)),
        )
        assert canvas.shape == canvas_shape
        # Track structure: column occupancy variance far exceeds that of
        # i.i.d. noise at the same density.
        col_density = canvas.mean(axis=0)
        density = canvas.mean()
        iid_std = np.sqrt(density * (1 - density) / canvas.shape[0])
        assert col_density.std() > 2 * iid_std
