"""Unit tests for the NL-means comparison denoiser."""

import numpy as np
import pytest

from repro.core import NlMeansConfig, nl_means_denoise, nl_means_filter


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NlMeansConfig(patch_size=4)  # even
        with pytest.raises(ValueError):
            NlMeansConfig(patch_size=-1)
        with pytest.raises(ValueError):
            NlMeansConfig(search_radius=0)
        with pytest.raises(ValueError):
            NlMeansConfig(strength=0.0)


class TestFilter:
    def test_constant_image_is_fixed_point(self):
        img = np.full((16, 16), 0.7)
        out = nl_means_filter(img)
        np.testing.assert_allclose(out, img, atol=1e-10)

    def test_output_within_input_range(self):
        rng = np.random.default_rng(0)
        img = rng.random((16, 16))
        out = nl_means_filter(img)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            nl_means_filter(np.zeros((2, 2, 2)))


class TestDenoise:
    def test_removes_salt_and_pepper_from_solid_regions(self):
        clean = np.zeros((24, 24), dtype=np.uint8)
        clean[:, 8:16] = 1
        rng = np.random.default_rng(1)
        noisy = clean.copy()
        # Sparse isolated flips well inside solid regions.
        for _ in range(6):
            y = int(rng.integers(2, 22))
            noisy[y, int(rng.integers(10, 14))] ^= 1
            noisy[y, int(rng.integers(1, 5))] ^= 1
        out = nl_means_denoise(noisy)
        assert (out != clean).mean() < (noisy != clean).mean()

    def test_template_argument_is_ignored(self):
        noisy = np.zeros((16, 16), dtype=np.uint8)
        noisy[:, 5:9] = 1
        a = nl_means_denoise(noisy, None)
        b = nl_means_denoise(noisy, np.ones_like(noisy))
        np.testing.assert_array_equal(a, b)

    def test_output_is_binary_uint8(self):
        noisy = (np.random.default_rng(0).random((16, 16)) < 0.4).astype(np.uint8)
        out = nl_means_denoise(noisy)
        assert out.dtype == np.uint8
        assert set(np.unique(out)).issubset({0, 1})
