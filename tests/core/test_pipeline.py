"""Integration-level tests for the PatternPaint pipeline with a tiny model.

These use an *untrained* tiny UNet: the pipeline contract (accounting,
dedup, timing, mask scheduling, library growth mechanics) must hold
regardless of model quality.
"""

import numpy as np
import pytest

from repro.core import PatternPaint, PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, linear_schedule
from repro.drc import advanced_deck
from repro.geometry import Grid
from repro.nn import TimeUnet, UNetConfig
from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def starters(deck):
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    return generator.sample_many(4, np.random.default_rng(0))


@pytest.fixture(scope="module")
def pipeline(deck):
    cfg = UNetConfig(
        image_size=32, base_channels=8, channel_mults=(1,), num_res_blocks=1,
        groups=4, time_dim=8, attention=False, seed=0,
    )
    ddpm = Ddpm(TimeUnet(cfg), linear_schedule(30))
    config = PatternPaintConfig(
        inpaint=InpaintConfig(num_steps=4),
        variations_per_mask=1,
        model_batch=16,
        select_k=3,
        samples_per_iteration=6,
        keep_raw=True,
    )
    return PatternPaint(ddpm, deck, config)


class TestInitialGeneration:
    def test_accounting(self, pipeline, starters):
        rng = np.random.default_rng(0)
        library, stats, raw = pipeline.initial_generation(starters, rng)
        assert stats.generated == len(starters) * 10  # 10 masks, v=1
        assert 0 <= stats.legal <= stats.generated
        assert stats.admitted <= stats.legal
        assert len(library) == stats.admitted
        assert stats.library_size == len(library)
        assert len(raw) == stats.generated  # keep_raw

    def test_timing_fields_populated(self, pipeline, starters):
        rng = np.random.default_rng(1)
        _, stats, _ = pipeline.initial_generation(starters[:2], rng)
        assert stats.inpaint_seconds > 0
        assert stats.denoise_seconds > 0
        assert stats.drc_seconds > 0
        assert stats.inpaint_seconds_per_sample > 0
        assert stats.denoise_seconds_per_sample > 0

    def test_library_contains_only_legal_patterns(self, pipeline, starters, deck):
        rng = np.random.default_rng(2)
        library, _, _ = pipeline.initial_generation(starters[:2], rng)
        engine = deck.engine()
        assert all(engine.is_clean(clip) for clip in library)


class TestIterativeGeneration:
    def test_iteration_stats_monotone_library(self, pipeline, starters):
        rng = np.random.default_rng(3)
        library, _, _ = pipeline.initial_generation(starters[:2], rng)
        library.add_many(starters)  # make sure seeds exist
        before = len(library)
        stats = pipeline.iterate(library, rng, iterations=2)
        assert len(stats) == 2
        assert stats[0].label == "iter-1"
        assert len(library) >= before
        assert stats[-1].library_size == len(library)

    def test_run_end_to_end(self, pipeline, starters):
        rng = np.random.default_rng(4)
        result = pipeline.run(
            starters[:2], rng, iterations=1, samples_per_iteration=4
        )
        assert result.stats[0].label == "init"
        assert result.total_generated == result.stats[0].generated + 4
        assert result.total_legal >= 0


class TestConfigHandling:
    def test_with_config_override(self, pipeline):
        modified = pipeline.with_config(select_k=7)
        assert modified.config.select_k == 7
        assert pipeline.config.select_k == 3  # original untouched
        assert modified.ddpm is pipeline.ddpm

    def test_mismatched_template_mask_lists_rejected(self, pipeline, starters):
        with pytest.raises(ValueError):
            pipeline.inpaint_batch(
                [starters[0]], [], np.random.default_rng(0)
            )
