"""Unit tests for PCA-based representative selection (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import density_constraint, fit_pca, select_representative


def wire_clip(offset, width=3, size=16):
    img = np.zeros((size, size), dtype=np.uint8)
    img[:, offset : offset + width] = 1
    return img


class TestPca:
    def test_explained_variance_target_met(self):
        rng = np.random.default_rng(0)
        flat = rng.normal(size=(50, 20))
        reduction = fit_pca(flat, explained_variance=0.9)
        assert reduction.explained_ratio >= 0.9

    def test_low_rank_data_needs_few_components(self):
        rng = np.random.default_rng(1)
        basis = rng.normal(size=(2, 30))
        coefficients = rng.normal(size=(40, 2))
        flat = coefficients @ basis
        reduction = fit_pca(flat, explained_variance=0.99)
        assert reduction.num_components <= 2

    def test_degenerate_identical_rows(self):
        flat = np.ones((10, 5))
        reduction = fit_pca(flat)
        assert reduction.num_components == 1
        assert reduction.explained_ratio == 1.0

    def test_transform_shape(self):
        rng = np.random.default_rng(2)
        flat = rng.normal(size=(20, 12))
        reduction = fit_pca(flat, 0.8)
        assert reduction.transform(flat).shape == (20, reduction.num_components)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_pca(np.zeros((4,)))
        with pytest.raises(ValueError):
            fit_pca(np.zeros((4, 4)), explained_variance=0.0)


class TestDensityConstraint:
    def test_threshold(self):
        constraint = density_constraint(0.4)
        sparse = np.zeros((10, 10), dtype=np.uint8)
        sparse[0, 0] = 1
        dense = np.ones((10, 10), dtype=np.uint8)
        assert constraint(sparse)
        assert not constraint(dense)


class TestSelection:
    def make_clips(self):
        return [wire_clip(offset) for offset in range(1, 12)]

    def test_selects_k_distinct_indices(self):
        clips = self.make_clips()
        selected = select_representative(clips, 4, np.random.default_rng(0))
        assert len(selected) == 4
        assert len(set(selected)) == 4

    def test_small_library_returns_everything_eligible(self):
        clips = self.make_clips()[:3]
        selected = select_representative(clips, 10, np.random.default_rng(0))
        assert sorted(selected) == [0, 1, 2]

    def test_constraint_filters_candidates(self):
        clips = self.make_clips() + [np.ones((16, 16), dtype=np.uint8)]
        dense_index = len(clips) - 1
        selected = select_representative(
            clips, 5, np.random.default_rng(0),
            constraint=density_constraint(0.4),
        )
        assert dense_index not in selected

    def test_no_eligible_candidates(self):
        clips = [np.ones((8, 8), dtype=np.uint8)] * 3
        selected = select_representative(
            clips, 2, np.random.default_rng(0),
            constraint=density_constraint(0.1),
        )
        assert selected == []

    def test_deterministic_given_rng(self):
        clips = self.make_clips()
        a = select_representative(clips, 5, np.random.default_rng(3))
        b = select_representative(clips, 5, np.random.default_rng(3))
        assert a == b

    def test_farthest_point_prefers_spread(self):
        # Clips with 1, 2 and 12 filled rows: the pair (1-row, 2-row) is the
        # only close pair, so farthest-point selection of 2 must avoid it
        # regardless of which seed the rng draws first.
        def rows(k, size=16):
            img = np.zeros((size, size), dtype=np.uint8)
            img[:k] = 1
            return img

        clips = [rows(1), rows(2), rows(12)]
        for seed in range(6):
            selected = set(
                select_representative(clips, 2, np.random.default_rng(seed))
            )
            assert selected != {0, 1}

    def test_k_validation(self):
        with pytest.raises(ValueError):
            select_representative([wire_clip(1)], 0, np.random.default_rng(0))

    def test_empty_library(self):
        assert select_representative([], 3, np.random.default_rng(0)) == []
