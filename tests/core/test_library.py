"""Unit tests for the deduplicating pattern library."""

import numpy as np

from repro.core import PatternLibrary


def clip(seed):
    """A wire clip whose offset/width vary with the seed (distinct H2
    geometry classes — dense random noise would all share one class)."""
    img = np.zeros((8, 8), dtype=np.uint8)
    offset = seed % 5
    width = 2 + seed % 3
    img[:, offset : offset + width] = 1
    return img


class TestLibrary:
    def test_add_deduplicates(self):
        library = PatternLibrary()
        assert library.add(clip(0))
        assert not library.add(clip(0))
        assert len(library) == 1

    def test_add_many_returns_new_count(self):
        library = PatternLibrary()
        added = library.add_many([clip(0), clip(1), clip(0), clip(2)])
        assert added == 3
        assert len(library) == 3

    def test_insertion_order_preserved(self):
        library = PatternLibrary([clip(3), clip(1), clip(2)])
        np.testing.assert_array_equal(library.clips[0], clip(3))
        np.testing.assert_array_equal(library.clips[2], clip(2))

    def test_contains(self):
        library = PatternLibrary([clip(0)])
        assert clip(0) in library
        assert clip(1) not in library

    def test_stored_clips_are_copies(self):
        source = clip(0)
        library = PatternLibrary([source])
        source[0, 0] ^= 1
        assert not np.array_equal(library.clips[0], source)

    def test_summary(self):
        library = PatternLibrary([clip(i) for i in range(5)])
        summary = library.summary()
        assert summary.count == 5
        assert summary.unique == 5
        assert summary.h2 > 0

    def test_copy_is_independent(self):
        library = PatternLibrary([clip(0)])
        duplicate = library.copy()
        duplicate.add(clip(1))
        assert len(library) == 1
        assert len(duplicate) == 2

    def test_iteration(self):
        clips = [clip(i) for i in range(3)]
        library = PatternLibrary(clips)
        assert sum(1 for _ in library) == 3
