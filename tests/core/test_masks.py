"""Unit tests for the predefined mask sets and schedule (Figure 6)."""

import numpy as np
import pytest

from repro.core import (
    MaskScheduler,
    NamedMask,
    all_masks,
    default_mask_set,
    horizontal_mask_set,
    mask_area_fraction,
)

SHAPE = (32, 32)


class TestMaskCatalogue:
    def test_ten_masks_total(self):
        assert len(all_masks(SHAPE)) == 10
        assert len(default_mask_set(SHAPE)) == 6
        assert len(horizontal_mask_set(SHAPE)) == 4

    def test_all_masks_cover_about_a_quarter(self):
        # The paper's inference scheme masks ~25% of the clip per call.
        for named in all_masks(SHAPE):
            assert 0.1 <= named.area_fraction <= 0.3, named.name

    def test_mean_area_fraction(self):
        assert mask_area_fraction(all_masks(SHAPE)) == pytest.approx(0.25, abs=0.05)
        assert mask_area_fraction([]) == 0.0

    def test_names_are_unique(self):
        names = [m.name for m in all_masks(SHAPE)]
        assert len(set(names)) == len(names)

    def test_horizontal_bands_tile_the_clip(self):
        union = np.zeros(SHAPE, dtype=int)
        for named in horizontal_mask_set(SHAPE):
            union += named.mask.astype(int)
        np.testing.assert_array_equal(union, np.ones(SHAPE, dtype=int))

    def test_quadrants_tile_the_clip(self):
        union = np.zeros(SHAPE, dtype=int)
        for named in default_mask_set(SHAPE)[:4]:
            union += named.mask.astype(int)
        np.testing.assert_array_equal(union, np.ones(SHAPE, dtype=int))

    def test_masks_scale_with_shape(self):
        for named in all_masks((16, 48)):
            assert named.mask.shape == (16, 48)


class TestNamedMaskValidation:
    def test_rejects_empty_mask(self):
        with pytest.raises(ValueError, match="no pixels"):
            NamedMask("empty", np.zeros(SHAPE, dtype=bool))

    def test_rejects_full_mask(self):
        with pytest.raises(ValueError, match="whole clip"):
            NamedMask("full", np.ones(SHAPE, dtype=bool))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            NamedMask("bad", np.zeros((2, 2, 2), dtype=bool))


class TestScheduler:
    def test_sequential_within_a_set(self):
        scheduler = MaskScheduler(SHAPE)
        names = [scheduler.next_mask("pattern-a").name for _ in range(6)]
        default_names = [m.name for m in default_mask_set(SHAPE)]
        assert names == default_names  # walks the set in declared order

    def test_wraps_around(self):
        scheduler = MaskScheduler(SHAPE, use_horizontal=False)
        n = len(default_mask_set(SHAPE))
        names = [scheduler.next_mask("k").name for _ in range(n + 1)]
        assert names[0] == names[-1]

    def test_new_keys_rotate_across_sets(self):
        scheduler = MaskScheduler(SHAPE)
        first = scheduler.next_mask("a").name
        second = scheduler.next_mask("b").name
        default_names = {m.name for m in default_mask_set(SHAPE)}
        horizontal_names = {m.name for m in horizontal_mask_set(SHAPE)}
        assert first in default_names
        assert second in horizontal_names

    def test_peek_does_not_advance(self):
        scheduler = MaskScheduler(SHAPE)
        peeked = scheduler.peek_mask("x").name
        taken = scheduler.next_mask("x").name
        assert peeked == taken

    def test_mask_count(self):
        assert MaskScheduler(SHAPE).mask_count == 10
        assert MaskScheduler(SHAPE, use_horizontal=False).mask_count == 6
