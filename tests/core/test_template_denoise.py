"""Unit + property tests for template-based denoising (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TemplateDenoiseConfig, cluster_lines, snap_lines, template_denoise
from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.drc import advanced_deck
from repro.geometry import Grid

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


def clean_clip(seed=0):
    deck = advanced_deck(GRID)
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    return generator.sample(np.random.default_rng(seed))


def add_edge_jitter(clip, rng, p=0.35):
    """Simulate inpainting edge noise: flip pixels adjacent to edges."""
    noisy = clip.astype(np.int16).copy()
    edges_h = np.zeros_like(clip, dtype=bool)
    edges_h[:, 1:] |= clip[:, 1:] != clip[:, :-1]
    edges_v = np.zeros_like(clip, dtype=bool)
    edges_v[1:, :] |= clip[1:, :] != clip[:-1, :]
    jitter = (edges_h | edges_v) & (rng.random(clip.shape) < p)
    noisy[jitter] = 1 - noisy[jitter]
    return noisy.astype(np.uint8)


class TestClusterLines:
    def test_groups_nearby_lines(self):
        clusters = cluster_lines(np.array([0, 1, 2, 10, 11, 30]), threshold=2)
        assert [list(c) for c in clusters] == [[0, 1, 2], [10, 11], [30]]

    def test_singletons_preserved(self):
        clusters = cluster_lines(np.array([5]), threshold=2)
        assert [list(c) for c in clusters] == [[5]]

    def test_empty_input_yields_no_clusters(self):
        assert cluster_lines(np.array([], dtype=np.int64), 2) == []

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
        st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_cluster_diameter_bounded(self, lines, threshold):
        clusters = cluster_lines(np.array(lines), threshold)
        total = sum(c.size for c in clusters)
        assert total == len(lines)
        for cluster in clusters:
            assert cluster.max() - cluster.min() <= threshold


class TestSnapLines:
    def test_snaps_to_nearby_template_line(self):
        out = snap_lines(
            np.array([0, 9, 11, 32]),  # jittery cluster around 10
            np.array([0, 10, 32]),
            extent=32,
            threshold=2,
            rng=None,
        )
        assert 10 in out
        assert 9 not in out and 11 not in out

    def test_keeps_novel_lines_far_from_template(self):
        out = snap_lines(
            np.array([0, 20, 32]),
            np.array([0, 5, 32]),
            extent=32,
            threshold=2,
            rng=np.random.default_rng(0),
        )
        assert 20 in out

    def test_borders_always_present(self):
        out = snap_lines(
            np.array([15]), np.array([0, 32]), extent=32, threshold=2, rng=None
        )
        assert out[0] == 0 and out[-1] == 32

    def test_output_strictly_increasing(self):
        rng = np.random.default_rng(1)
        lines = np.sort(rng.integers(0, 33, size=20))
        out = snap_lines(lines, np.array([0, 8, 16, 32]), 32, 2, rng)
        assert (np.diff(out) > 0).all()


class TestTemplateDenoise:
    def test_clean_input_is_fixed_point(self):
        clip = clean_clip(0)
        denoised = template_denoise(clip, clip)
        np.testing.assert_array_equal(denoised, clip)

    def test_recovers_clean_clip_from_edge_jitter(self):
        clip = clean_clip(1)
        rng = np.random.default_rng(2)
        noisy = add_edge_jitter(clip, rng)
        denoised = template_denoise(noisy, clip)
        # Denoising against the generating template should recover it
        # (nearly) exactly: all jitter sits within the snap threshold.
        assert (denoised != clip).mean() < 0.02

    def test_restores_legality_of_jittered_clips(self):
        engine = advanced_deck(GRID).engine()
        restored = 0
        for seed in range(5):
            clip = clean_clip(seed)
            noisy = add_edge_jitter(clip, np.random.default_rng(100 + seed))
            if engine.is_clean(noisy):
                continue  # jitter happened to stay legal; not informative
            denoised = template_denoise(noisy, clip)
            restored += engine.is_clean(denoised)
        assert restored >= 3

    def test_float_model_output_accepted(self):
        clip = clean_clip(3)
        as_float = clip.astype(np.float32) * 2 - 1  # model space
        denoised = template_denoise(as_float, clip)
        np.testing.assert_array_equal(denoised, clip)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            template_denoise(np.zeros((8, 8)), np.zeros((16, 16)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TemplateDenoiseConfig(threshold_px=0)
        with pytest.raises(ValueError):
            TemplateDenoiseConfig(vote_threshold=1.5)

    def test_deterministic_by_default(self):
        clip = clean_clip(4)
        noisy = add_edge_jitter(clip, np.random.default_rng(5))
        a = template_denoise(noisy, clip)
        b = template_denoise(noisy, clip)
        np.testing.assert_array_equal(a, b)

    def test_median_fallback_mode(self):
        clip = clean_clip(6)
        noisy = add_edge_jitter(clip, np.random.default_rng(7))
        config = TemplateDenoiseConfig(random_fallback=False)
        a = template_denoise(noisy, clip, config)
        b = template_denoise(noisy, clip, config)
        np.testing.assert_array_equal(a, b)
