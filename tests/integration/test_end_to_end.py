"""End-to-end integration tests across subsystem boundaries.

These train tiny models inline (seconds, not minutes) and verify that the
complete chains — corpus -> train -> inpaint -> denoise -> DRC -> library
-> metrics, and topology -> solver -> DRC — hold together.
"""

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.baselines.solver import SolverSettings, SquishLegalizer
from repro.core import PatternPaint, PatternPaintConfig
from repro.diffusion import Ddpm, InpaintConfig, clips_to_model_space, linear_schedule
from repro.drc import advanced_deck, basic_deck
from repro.geometry import Grid, squish
from repro.metrics import summarize_library
from repro.nn import TimeUnet, UNetConfig

GRID = Grid(nm_per_px=32.0, width_px=16, height_px=16)


@pytest.fixture(scope="module")
def tiny_trained_ddpm():
    """A 16x16 DDPM briefly trained on basic-deck clips."""
    deck = basic_deck(GRID)
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    clips = generator.sample_many(40, np.random.default_rng(0))
    data = clips_to_model_space(clips)
    cfg = UNetConfig(
        image_size=16, base_channels=8, channel_mults=(1, 2), num_res_blocks=1,
        groups=4, time_dim=16, attention=False, seed=0,
    )
    ddpm = Ddpm(TimeUnet(cfg), linear_schedule(60))
    ddpm.fit(data, steps=80, batch_size=8, lr=3e-3, rng=np.random.default_rng(1))
    return ddpm


class TestFullPipeline:
    def test_generate_denoise_check_admit(self, tiny_trained_ddpm):
        deck = basic_deck(GRID)
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        starters = generator.sample_many(4, np.random.default_rng(2))
        pipeline = PatternPaint(
            tiny_trained_ddpm,
            deck,
            PatternPaintConfig(
                inpaint=InpaintConfig(num_steps=6),
                variations_per_mask=1,
                model_batch=16,
            ),
        )
        library, stats, _ = pipeline.initial_generation(
            starters, np.random.default_rng(3)
        )
        assert stats.generated == 40
        # A briefly trained model + template snapping on an easy deck must
        # produce at least some legal output.
        assert stats.legal > 0
        summary = summarize_library(library.clips)
        assert summary.unique == len(library)

    def test_iterative_round_grows_or_holds_library(self, tiny_trained_ddpm):
        deck = basic_deck(GRID)
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        starters = generator.sample_many(3, np.random.default_rng(4))
        pipeline = PatternPaint(
            tiny_trained_ddpm,
            deck,
            PatternPaintConfig(
                inpaint=InpaintConfig(num_steps=6),
                variations_per_mask=1,
                model_batch=16,
                select_k=4,
                samples_per_iteration=8,
            ),
        )
        result = pipeline.run(starters, np.random.default_rng(5), iterations=2)
        sizes = [s.library_size for s in result.stats]
        assert sizes == sorted(sizes)


class TestSolverChain:
    def test_generator_squish_solver_drc_loop(self):
        """Clip -> squish -> re-legalize -> DRC closes the loop."""
        deck = basic_deck(GRID)
        generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
        legalizer = SquishLegalizer(deck, SolverSettings(max_iter=80))
        engine = deck.engine()
        successes = 0
        for seed in range(4):
            clip = generator.sample(np.random.default_rng(seed))
            topology = squish(clip).topology
            result = legalizer.legalize(
                topology, width_px=16, height_px=16,
                rng=np.random.default_rng(seed),
            )
            if result.success:
                successes += 1
                assert engine.is_clean(result.clip)
        assert successes >= 2

    def test_advanced_deck_is_harder_for_solver(self):
        grid = Grid(nm_per_px=16.0, width_px=32, height_px=32)
        easy_deck = basic_deck(grid)
        hard_deck = advanced_deck(grid)
        generator = TrackPatternGenerator(
            TrackGeneratorConfig(deck=hard_deck)
        )
        topologies = [
            squish(generator.sample(np.random.default_rng(seed))).topology
            for seed in range(5)
        ]
        settings = SolverSettings(max_iter=80, discrete_restarts=1)
        easy_ok = sum(
            SquishLegalizer(easy_deck, settings)
            .legalize(t, width_px=32, height_px=32, rng=np.random.default_rng(0))
            .success
            for t in topologies
        )
        hard_ok = sum(
            SquishLegalizer(hard_deck, settings)
            .legalize(t, width_px=32, height_px=32, rng=np.random.default_rng(0))
            .success
            for t in topologies
        )
        assert hard_ok <= easy_ok
