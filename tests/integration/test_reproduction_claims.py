"""Fast checks of the paper's core mechanisms on tiny inline models.

The full quantitative claims are asserted by the benchmark suite against
the cached experiment campaigns; these tests validate the same *mechanisms*
at a scale that runs in seconds, so `pytest tests/` alone already guards
the reproduction logic.
"""

import numpy as np
import pytest

from repro.baselines.rule_based import TrackGeneratorConfig, TrackPatternGenerator
from repro.core.nlmeans import nl_means_denoise
from repro.core.template_denoise import template_denoise
from repro.drc import advanced_deck
from repro.geometry import Grid, validate_clip

GRID = Grid(nm_per_px=16.0, width_px=32, height_px=32)


@pytest.fixture(scope="module")
def deck():
    return advanced_deck(GRID)


@pytest.fixture(scope="module")
def engine(deck):
    return deck.engine()


@pytest.fixture(scope="module")
def noisy_samples(deck):
    """Synthetic 'inpainting outputs': legal clips + edge jitter, the noise
    model Table III is about."""
    generator = TrackPatternGenerator(TrackGeneratorConfig(deck=deck))
    rng = np.random.default_rng(0)
    pairs = []
    for seed in range(25):
        clip = generator.sample(np.random.default_rng(seed))
        noisy = clip.astype(np.float32) * 2 - 1
        noisy += rng.normal(0, 0.5, size=noisy.shape).astype(np.float32)
        pairs.append((noisy, clip))
    return pairs


class TestTable3Mechanism:
    """Template denoise >> NL-means >> raw, on synthetic edge noise."""

    def test_denoiser_ordering(self, engine, noisy_samples):
        raw_ok = sum(
            engine.is_clean(validate_clip(noisy)) for noisy, _ in noisy_samples
        )
        nlm_ok = sum(
            engine.is_clean(nl_means_denoise(noisy)) for noisy, _ in noisy_samples
        )
        rng = np.random.default_rng(1)
        tpl_ok = sum(
            engine.is_clean(template_denoise(noisy, template, rng=rng))
            for noisy, template in noisy_samples
        )
        assert tpl_ok > nlm_ok >= raw_ok
        assert raw_ok <= 2  # raw pixel noise is essentially never legal
        assert tpl_ok >= len(noisy_samples) // 2


class TestH2Mechanism:
    """Width edits on a fixed topology raise H2 but not H1 (Section V-B)."""

    def test_width_variation_shows_in_h2_only(self, deck):
        from repro.metrics import h1_entropy, h2_entropy

        def tracks(widths):
            img = np.zeros((32, 32), dtype=np.uint8)
            for k, w in enumerate(widths):
                center = 4 + 8 * k
                img[:, center - w // 2 : center - w // 2 + w] = 1
            return img

        base_library = [tracks([3, 3, 3, 3])]
        widened = [
            tracks([5, 3, 3, 3]),
            tracks([3, 5, 3, 3]),
            tracks([3, 3, 5, 3]),
        ]
        library = base_library + widened
        assert h1_entropy(library) == 0.0  # one topology class
        assert h2_entropy(library) == pytest.approx(2.0)  # four geometry classes


class TestFinetuningMechanism:
    """Finetuning on target-node data moves samples toward that node."""

    def test_overfit_shifts_eval_loss(self):
        from repro.diffusion import (
            Ddpm,
            FinetuneConfig,
            clips_to_model_space,
            finetune,
            linear_schedule,
        )
        from repro.nn import TimeUnet, UNetConfig

        rng = np.random.default_rng(0)
        cfg = UNetConfig(
            image_size=16, base_channels=8, channel_mults=(1,),
            num_res_blocks=1, groups=4, time_dim=8, attention=False, seed=0,
        )
        ddpm = Ddpm(TimeUnet(cfg), linear_schedule(30))

        def wire_set(offset):
            clips = []
            for shift in range(4):
                img = np.zeros((16, 16), dtype=np.uint8)
                img[:, (offset + shift) % 12 : (offset + shift) % 12 + 3] = 1
                clips.append(img)
            return clips

        target = wire_set(2)
        tuned, _ = finetune(
            ddpm,
            target,
            rng,
            FinetuneConfig(steps=60, batch_size=4, lr=3e-3, prior_weight=0.0),
        )
        target_data = clips_to_model_space(target)
        base_loss = np.mean(
            [ddpm.eval_loss(target_data, np.random.default_rng(s)) for s in range(5)]
        )
        tuned_loss = np.mean(
            [tuned.eval_loss(target_data, np.random.default_rng(s)) for s in range(5)]
        )
        assert tuned_loss < base_loss
